//! Error type shared by all `qbp-core` constructors and validators.

use crate::{ComponentId, PartitionId, Size};
use std::fmt;

/// Errors returned by problem-construction and validation APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A component id referenced a component that does not exist.
    ComponentOutOfRange {
        /// The offending id.
        id: ComponentId,
        /// Number of components in the circuit.
        len: usize,
    },
    /// A partition id referenced a partition that does not exist.
    PartitionOutOfRange {
        /// The offending id.
        id: PartitionId,
        /// Number of partitions in the topology.
        len: usize,
    },
    /// A connection or timing constraint from a component to itself.
    SelfLoop(ComponentId),
    /// Two parts of the problem disagree on dimensions
    /// (e.g. a `P` matrix that is not `M × N`).
    DimensionMismatch {
        /// What was being validated.
        what: &'static str,
        /// Expected dimension.
        expected: (usize, usize),
        /// Found dimension.
        found: (usize, usize),
    },
    /// The partition topology is malformed (non-square matrices, negative
    /// costs, zero partitions, ...).
    InvalidTopology(String),
    /// The problem cannot have any feasible solution: total component size
    /// exceeds total capacity.
    CapacityImpossible {
        /// Sum of all component sizes.
        total_size: Size,
        /// Sum of all partition capacities.
        total_capacity: Size,
    },
    /// An assignment vector had the wrong length for the circuit.
    AssignmentLengthMismatch {
        /// Expected number of components.
        expected: usize,
        /// Found vector length.
        found: usize,
    },
    /// A weight, delay or scale factor was negative where a non-negative
    /// value is required (the QBP linearization assumes `Q̂ ≥ 0`).
    NegativeValue {
        /// What was being validated.
        what: &'static str,
        /// The offending value.
        value: i64,
    },
    /// A circuit with zero components was used where at least one is needed.
    EmptyCircuit,
    /// A solver that requires a feasible starting assignment (GFM, GKL) was
    /// given one that violates constraints.
    InfeasibleStart {
        /// Number of capacity violations in the start.
        capacity_violations: usize,
        /// Number of timing violations in the start.
        timing_violations: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ComponentOutOfRange { id, len } => {
                write!(f, "component {id} out of range for circuit with {len} components")
            }
            Error::PartitionOutOfRange { id, len } => {
                write!(f, "partition {id} out of range for topology with {len} partitions")
            }
            Error::SelfLoop(id) => {
                write!(f, "self-connection on component {id} is not allowed")
            }
            Error::DimensionMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "{what} has dimensions {}x{}, expected {}x{}",
                found.0, found.1, expected.0, expected.1
            ),
            Error::InvalidTopology(msg) => write!(f, "invalid partition topology: {msg}"),
            Error::CapacityImpossible {
                total_size,
                total_capacity,
            } => write!(
                f,
                "total component size {total_size} exceeds total capacity {total_capacity}"
            ),
            Error::AssignmentLengthMismatch { expected, found } => write!(
                f,
                "assignment has {found} entries, expected {expected}"
            ),
            Error::NegativeValue { what, value } => {
                write!(f, "{what} must be non-negative, got {value}")
            }
            Error::EmptyCircuit => write!(f, "circuit has no components"),
            Error::InfeasibleStart {
                capacity_violations,
                timing_violations,
            } => write!(
                f,
                "initial assignment is infeasible ({capacity_violations} capacity, {timing_violations} timing violations)"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = vec![
            Error::ComponentOutOfRange {
                id: ComponentId::new(5),
                len: 3,
            },
            Error::PartitionOutOfRange {
                id: PartitionId::new(9),
                len: 4,
            },
            Error::SelfLoop(ComponentId::new(1)),
            Error::DimensionMismatch {
                what: "linear cost matrix P",
                expected: (4, 3),
                found: (3, 4),
            },
            Error::InvalidTopology("empty".into()),
            Error::CapacityImpossible {
                total_size: 10,
                total_capacity: 5,
            },
            Error::AssignmentLengthMismatch {
                expected: 3,
                found: 2,
            },
            Error::NegativeValue {
                what: "alpha",
                value: -1,
            },
            Error::EmptyCircuit,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with(|c: char| c.is_ascii_digit()));
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<Error>();
    }
}
