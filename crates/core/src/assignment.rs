//! An assignment `A : J → I` of components to partitions, and its
//! boolean-vector view `y`.

use crate::{ComponentId, Error, PairIndex, PartitionId};
use serde::{Deserialize, Serialize};

/// A complete assignment of every component to a partition (the solution
/// representation; C3 — each component in exactly one partition — holds by
/// construction).
///
/// ```
/// use qbp_core::{Assignment, ComponentId, PartitionId};
///
/// # fn main() -> Result<(), qbp_core::Error> {
/// let mut a = Assignment::from_parts(vec![0, 1, 0])?;
/// assert_eq!(a.partition_of(ComponentId::new(1)), PartitionId::new(1));
/// a.move_to(ComponentId::new(1), PartitionId::new(3));
/// assert_eq!(a.partition_of(ComponentId::new(1)), PartitionId::new(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Assignment {
    part: Vec<u32>,
}

impl Assignment {
    /// Creates an assignment from raw partition indices, one per component.
    ///
    /// # Errors
    ///
    /// Returns an error if the vector is empty (an assignment for an empty
    /// circuit is never useful and usually indicates a bug upstream).
    pub fn from_parts(part: Vec<u32>) -> Result<Self, Error> {
        if part.is_empty() {
            return Err(Error::EmptyCircuit);
        }
        Ok(Assignment { part })
    }

    /// Creates an assignment by evaluating `f` for each component `0..n`.
    pub fn from_fn(n: usize, mut f: impl FnMut(ComponentId) -> PartitionId) -> Self {
        Assignment {
            part: (0..n).map(|j| f(ComponentId::new(j)).0).collect(),
        }
    }

    /// Creates an assignment placing all `n` components in partition 0.
    pub fn all_in_first(n: usize) -> Self {
        Assignment { part: vec![0; n] }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.part.len()
    }

    /// Returns `true` if the assignment covers no components.
    pub fn is_empty(&self) -> bool {
        self.part.is_empty()
    }

    /// The partition of component `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn partition_of(&self, j: ComponentId) -> PartitionId {
        PartitionId(self.part[j.index()])
    }

    /// Raw partition index of component `j` — hot-loop variant of
    /// [`Assignment::partition_of`].
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[inline]
    pub fn part_index(&self, j: usize) -> usize {
        self.part[j] as usize
    }

    /// Moves component `j` to partition `to`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn move_to(&mut self, j: ComponentId, to: PartitionId) {
        self.part[j.index()] = to.0;
    }

    /// Swaps the partitions of two components.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn swap(&mut self, j1: ComponentId, j2: ComponentId) {
        self.part.swap(j1.index(), j2.index());
    }

    /// Iterates over `(component, partition)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ComponentId, PartitionId)> + '_ {
        self.part
            .iter()
            .enumerate()
            .map(|(j, &i)| (ComponentId::new(j), PartitionId(i)))
    }

    /// The raw partition indices, one per component.
    pub fn as_slice(&self) -> &[u32] {
        &self.part
    }

    /// Materializes the boolean solution vector `y` of length `m·n`
    /// (`y[r] = 1` iff `r = (A(j), j)`), the paper's §3.1 flattening.
    ///
    /// Intended for small instances (tests, worked examples); solvers work
    /// on the compact representation directly.
    pub fn indicator_vector(&self, m: usize) -> Vec<bool> {
        let mut y = vec![false; m * self.part.len()];
        for (j, &i) in self.part.iter().enumerate() {
            y[PairIndex::from_parts(PartitionId(i), ComponentId::new(j), m).index()] = true;
        }
        y
    }

    /// Reconstructs an assignment from a boolean vector `y` of length `m·n`.
    ///
    /// Returns `None` if `y` violates C3 (some component has zero or multiple
    /// set entries) or has a length that is not a multiple of `m`.
    pub fn from_indicator(y: &[bool], m: usize) -> Option<Self> {
        if m == 0 || !y.len().is_multiple_of(m) || y.is_empty() {
            return None;
        }
        let n = y.len() / m;
        let mut part = Vec::with_capacity(n);
        for j in 0..n {
            let block = &y[j * m..(j + 1) * m];
            let mut chosen = None;
            for (i, &set) in block.iter().enumerate() {
                if set {
                    if chosen.is_some() {
                        return None;
                    }
                    chosen = Some(i as u32);
                }
            }
            part.push(chosen?);
        }
        Some(Assignment { part })
    }

    /// The components currently assigned to partition `i`.
    pub fn members_of(&self, i: PartitionId) -> Vec<ComponentId> {
        self.part
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == i.0)
            .map(|(j, _)| ComponentId::new(j))
            .collect()
    }

    /// Checks every partition index is `< m`.
    ///
    /// # Errors
    ///
    /// Returns the first out-of-range partition found.
    pub fn validate(&self, m: usize) -> Result<(), Error> {
        for &i in &self.part {
            if i as usize >= m {
                return Err(Error::PartitionOutOfRange {
                    id: PartitionId(i),
                    len: m,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let a = Assignment::from_parts(vec![2, 0, 1]).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.partition_of(ComponentId::new(0)), PartitionId::new(2));
        assert_eq!(a.part_index(2), 1);
        assert!(Assignment::from_parts(vec![]).is_err());
    }

    #[test]
    fn from_fn_and_all_in_first() {
        let a = Assignment::from_fn(4, |j| PartitionId::new(j.index() % 2));
        assert_eq!(a.as_slice(), &[0, 1, 0, 1]);
        let b = Assignment::all_in_first(3);
        assert_eq!(b.as_slice(), &[0, 0, 0]);
    }

    #[test]
    fn move_and_swap() {
        let mut a = Assignment::from_parts(vec![0, 1, 2]).unwrap();
        a.move_to(ComponentId::new(0), PartitionId::new(5));
        assert_eq!(a.as_slice(), &[5, 1, 2]);
        a.swap(ComponentId::new(0), ComponentId::new(2));
        assert_eq!(a.as_slice(), &[2, 1, 5]);
    }

    #[test]
    fn indicator_roundtrip() {
        let a = Assignment::from_parts(vec![2, 0, 3, 1]).unwrap();
        let m = 4;
        let y = a.indicator_vector(m);
        assert_eq!(y.iter().filter(|&&b| b).count(), 4);
        // Exactly one per component block — C3.
        let back = Assignment::from_indicator(&y, m).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn from_indicator_rejects_c3_violations() {
        let m = 2;
        // Component 0 in both partitions.
        assert!(Assignment::from_indicator(&[true, true, true, false], m).is_none());
        // Component 1 in none.
        assert!(Assignment::from_indicator(&[true, false, false, false], m).is_none());
        // Bad length.
        assert!(Assignment::from_indicator(&[true, false, true], m).is_none());
        assert!(Assignment::from_indicator(&[], m).is_none());
    }

    #[test]
    fn members_and_validate() {
        let a = Assignment::from_parts(vec![1, 0, 1]).unwrap();
        assert_eq!(
            a.members_of(PartitionId::new(1)),
            vec![ComponentId::new(0), ComponentId::new(2)]
        );
        assert!(a.validate(2).is_ok());
        assert!(matches!(
            a.validate(1),
            Err(Error::PartitionOutOfRange { .. })
        ));
    }

    #[test]
    fn iter_pairs() {
        let a = Assignment::from_parts(vec![3, 1]).unwrap();
        let v: Vec<_> = a.iter().collect();
        assert_eq!(
            v,
            vec![
                (ComponentId::new(0), PartitionId::new(3)),
                (ComponentId::new(1), PartitionId::new(1)),
            ]
        );
    }
}
