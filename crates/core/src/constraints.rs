//! Sparse timing constraints: the paper's `D_C` matrix.
//!
//! Formally `D_C` is `N×N`, but "in reality a large number of these
//! constraints are involved with components which do not have actual
//! electrical connection or cycle time constraints between them" (§5). We
//! therefore store only the *critical* constraints — ordered pairs
//! `(j1, j2)` with a finite maximum routing delay — exactly the quantity
//! the paper reports in Table I.

use crate::{ComponentId, Delay, Error, NO_CONSTRAINT};
use serde::{Deserialize, Serialize};

/// A sparse set of maximum-routing-delay constraints between component pairs.
///
/// `add(j1, j2, dc)` requires that in any assignment `A`,
/// `D(A(j1), A(j2)) ≤ dc`. Constraints are directed; use
/// [`TimingConstraints::add_symmetric`] when the delay budget applies in both
/// directions. Adding a second constraint on the same ordered pair keeps the
/// tighter (smaller) bound.
///
/// ```
/// use qbp_core::{TimingConstraints, ComponentId};
///
/// # fn main() -> Result<(), qbp_core::Error> {
/// let mut tc = TimingConstraints::new(3);
/// let (a, b) = (ComponentId::new(0), ComponentId::new(1));
/// tc.add(a, b, 5)?;
/// tc.add(a, b, 3)?; // tightens
/// assert_eq!(tc.get(a, b), Some(3));
/// assert_eq!(tc.get(b, a), None);
/// assert_eq!(tc.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimingConstraints {
    n: usize,
    /// `out[j1]` lists `(j2, dc)` for constraints `j1 → j2`.
    out: Vec<Vec<(u32, Delay)>>,
    /// `inc[j2]` lists `(j1, dc)` for constraints `j1 → j2`.
    inc: Vec<Vec<(u32, Delay)>>,
    count: usize,
}

impl PartialEq for TimingConstraints {
    fn eq(&self, other: &Self) -> bool {
        // Constraint sets are sets: equality is order-insensitive in the
        // adjacency lists (parsers and generators may insert in different
        // orders).
        if self.n != other.n || self.count != other.count {
            return false;
        }
        let canon = |lists: &[Vec<(u32, Delay)>]| -> Vec<Vec<(u32, Delay)>> {
            lists
                .iter()
                .map(|l| {
                    let mut l = l.clone();
                    l.sort_unstable();
                    l
                })
                .collect()
        };
        canon(&self.out) == canon(&other.out)
    }
}

impl Eq for TimingConstraints {}

impl TimingConstraints {
    /// Creates an empty constraint set for a circuit with `n` components.
    pub fn new(n: usize) -> Self {
        TimingConstraints {
            n,
            out: vec![Vec::new(); n],
            inc: vec![Vec::new(); n],
            count: 0,
        }
    }

    /// Number of components this constraint set is sized for.
    pub fn component_count(&self) -> usize {
        self.n
    }

    /// Number of (directed) critical constraints — the paper's
    /// "# of Timing Constraints" column.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` if there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds (or tightens) the constraint `D(A(j1), A(j2)) ≤ max_delay`.
    ///
    /// A `max_delay` of [`NO_CONSTRAINT`] is accepted and ignored, so
    /// constraint generators can pass through unconstrained pairs untouched.
    ///
    /// # Errors
    ///
    /// Returns an error if either component is out of range, if `j1 == j2`
    /// (intra-component delay is not routed between partitions), or if
    /// `max_delay` is negative.
    pub fn add(
        &mut self,
        j1: ComponentId,
        j2: ComponentId,
        max_delay: Delay,
    ) -> Result<(), Error> {
        for id in [j1, j2] {
            if id.index() >= self.n {
                return Err(Error::ComponentOutOfRange { id, len: self.n });
            }
        }
        if j1 == j2 {
            return Err(Error::SelfLoop(j1));
        }
        if max_delay < 0 {
            return Err(Error::NegativeValue {
                what: "timing constraint",
                value: max_delay,
            });
        }
        if max_delay == NO_CONSTRAINT {
            return Ok(());
        }
        let out = &mut self.out[j1.index()];
        match out.iter_mut().find(|(k, _)| *k == j2.0) {
            Some((_, dc)) => *dc = (*dc).min(max_delay),
            None => {
                out.push((j2.0, max_delay));
                self.count += 1;
            }
        }
        let inc = &mut self.inc[j2.index()];
        match inc.iter_mut().find(|(k, _)| *k == j1.0) {
            Some((_, dc)) => *dc = (*dc).min(max_delay),
            None => inc.push((j1.0, max_delay)),
        }
        Ok(())
    }

    /// Adds the constraint in both directions.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TimingConstraints::add`].
    pub fn add_symmetric(
        &mut self,
        a: ComponentId,
        b: ComponentId,
        max_delay: Delay,
    ) -> Result<(), Error> {
        self.add(a, b, max_delay)?;
        self.add(b, a, max_delay)
    }

    /// Overwrites the constraint on `(j1, j2)` (an ECO edit entry point:
    /// unlike [`TimingConstraints::add`] this may *loosen* an existing
    /// bound). A `max_delay` of [`NO_CONSTRAINT`] removes the constraint —
    /// physically, so the adjacency lists end up in exactly the state a
    /// from-scratch construction of the edited set would produce. Returns
    /// the previous bound, if any.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TimingConstraints::add`].
    pub fn set(
        &mut self,
        j1: ComponentId,
        j2: ComponentId,
        max_delay: Delay,
    ) -> Result<Option<Delay>, Error> {
        for id in [j1, j2] {
            if id.index() >= self.n {
                return Err(Error::ComponentOutOfRange { id, len: self.n });
            }
        }
        if j1 == j2 {
            return Err(Error::SelfLoop(j1));
        }
        if max_delay < 0 {
            return Err(Error::NegativeValue {
                what: "timing constraint",
                value: max_delay,
            });
        }
        let out = &mut self.out[j1.index()];
        let pos = out.iter().position(|(k, _)| *k == j2.0);
        let previous = match pos {
            Some(e) => {
                let prev = out[e].1;
                let inc = &mut self.inc[j2.index()];
                let ie = inc
                    .iter()
                    .position(|(k, _)| *k == j1.0)
                    .expect("in-constraint mirror out of sync");
                if max_delay == NO_CONSTRAINT {
                    self.out[j1.index()].remove(e);
                    self.inc[j2.index()].remove(ie);
                    self.count -= 1;
                } else {
                    self.out[j1.index()][e].1 = max_delay;
                    self.inc[j2.index()][ie].1 = max_delay;
                }
                Some(prev)
            }
            None => {
                if max_delay != NO_CONSTRAINT {
                    self.out[j1.index()].push((j2.0, max_delay));
                    self.inc[j2.index()].push((j1.0, max_delay));
                    self.count += 1;
                }
                None
            }
        };
        Ok(previous)
    }

    /// Removes the constraint on `(j1, j2)`, returning the removed bound.
    ///
    /// # Errors
    ///
    /// Returns an error if either component is out of range or `j1 == j2`.
    pub fn remove(&mut self, j1: ComponentId, j2: ComponentId) -> Result<Option<Delay>, Error> {
        self.set(j1, j2, NO_CONSTRAINT)
    }

    /// Removes every constraint incident to `j` in either direction (the
    /// timing side of detaching a component). Returns the number removed.
    ///
    /// # Errors
    ///
    /// Returns an error if `j` is out of range.
    pub fn detach(&mut self, j: ComponentId) -> Result<usize, Error> {
        if j.index() >= self.n {
            return Err(Error::ComponentOutOfRange { id: j, len: self.n });
        }
        let mut removed = 0;
        let outs = std::mem::take(&mut self.out[j.index()]);
        for (k, _) in outs {
            removed += 1;
            self.count -= 1;
            let inc = &mut self.inc[k as usize];
            let e = inc
                .iter()
                .position(|(o, _)| *o == j.0)
                .expect("in-constraint mirror out of sync");
            inc.remove(e);
        }
        let ins = std::mem::take(&mut self.inc[j.index()]);
        for (k, _) in ins {
            removed += 1;
            self.count -= 1;
            let out = &mut self.out[k as usize];
            let e = out
                .iter()
                .position(|(o, _)| *o == j.0)
                .expect("out-constraint mirror out of sync");
            out.remove(e);
        }
        Ok(removed)
    }

    /// Grows the constraint set to cover `n` components (no-op when already
    /// at least that large) — the timing side of appending a component.
    pub fn grow(&mut self, n: usize) {
        while self.n < n {
            self.out.push(Vec::new());
            self.inc.push(Vec::new());
            self.n += 1;
        }
    }

    /// Tightens every constraint by `delta` (clamping at 0): the global
    /// "cycle time shrank" edit. Returns the number of constraints changed.
    ///
    /// # Errors
    ///
    /// Returns an error if `delta` is negative.
    pub fn tighten_all(&mut self, delta: Delay) -> Result<usize, Error> {
        if delta < 0 {
            return Err(Error::NegativeValue {
                what: "cycle-time tightening delta",
                value: delta,
            });
        }
        if delta == 0 {
            return Ok(0);
        }
        let mut changed = 0;
        for row in self.out.iter_mut() {
            for (_, dc) in row.iter_mut() {
                if *dc > 0 {
                    *dc = (*dc - delta).max(0);
                    changed += 1;
                }
            }
        }
        for row in self.inc.iter_mut() {
            for (_, dc) in row.iter_mut() {
                if *dc > 0 {
                    *dc = (*dc - delta).max(0);
                }
            }
        }
        Ok(changed)
    }

    /// The constraint on the ordered pair `(j1, j2)`, if any.
    pub fn get(&self, j1: ComponentId, j2: ComponentId) -> Option<Delay> {
        self.out
            .get(j1.index())?
            .iter()
            .find(|(k, _)| *k == j2.0)
            .map(|&(_, dc)| dc)
    }

    /// The constraint on `(j1, j2)`, or [`NO_CONSTRAINT`] when absent —
    /// convenient for the `D(i1,i2) ≤ D_C(j1,j2)` comparison.
    pub fn limit(&self, j1: ComponentId, j2: ComponentId) -> Delay {
        self.get(j1, j2).unwrap_or(NO_CONSTRAINT)
    }

    /// Iterates over constraints leaving `j`: `(j2, dc)`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn constraints_from(&self, j: ComponentId) -> impl Iterator<Item = (ComponentId, Delay)> + '_ {
        self.out[j.index()]
            .iter()
            .map(|&(k, dc)| (ComponentId::new(k as usize), dc))
    }

    /// Iterates over constraints entering `j`: `(j1, dc)`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn constraints_into(&self, j: ComponentId) -> impl Iterator<Item = (ComponentId, Delay)> + '_ {
        self.inc[j.index()]
            .iter()
            .map(|&(k, dc)| (ComponentId::new(k as usize), dc))
    }

    /// Iterates over all constraints as `(j1, j2, dc)`.
    pub fn iter(&self) -> impl Iterator<Item = (ComponentId, ComponentId, Delay)> + '_ {
        self.out.iter().enumerate().flat_map(|(j1, cons)| {
            cons.iter()
                .map(move |&(j2, dc)| (ComponentId::new(j1), ComponentId::new(j2 as usize), dc))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (ComponentId, ComponentId, ComponentId) {
        (ComponentId::new(0), ComponentId::new(1), ComponentId::new(2))
    }

    #[test]
    fn add_get_and_tighten() {
        let (a, b, _) = ids();
        let mut tc = TimingConstraints::new(3);
        tc.add(a, b, 7).unwrap();
        assert_eq!(tc.get(a, b), Some(7));
        tc.add(a, b, 9).unwrap(); // looser: ignored
        assert_eq!(tc.get(a, b), Some(7));
        tc.add(a, b, 2).unwrap(); // tighter: kept
        assert_eq!(tc.get(a, b), Some(2));
        assert_eq!(tc.len(), 1);
    }

    #[test]
    fn directed_by_default_symmetric_on_request() {
        let (a, b, _) = ids();
        let mut tc = TimingConstraints::new(3);
        tc.add(a, b, 4).unwrap();
        assert_eq!(tc.get(b, a), None);
        assert_eq!(tc.limit(b, a), NO_CONSTRAINT);
        tc.add_symmetric(a, b, 3).unwrap();
        assert_eq!(tc.get(a, b), Some(3));
        assert_eq!(tc.get(b, a), Some(3));
        assert_eq!(tc.len(), 2);
    }

    #[test]
    fn no_constraint_sentinel_is_ignored() {
        let (a, b, _) = ids();
        let mut tc = TimingConstraints::new(3);
        tc.add(a, b, NO_CONSTRAINT).unwrap();
        assert!(tc.is_empty());
    }

    #[test]
    fn rejects_self_loop_and_out_of_range_and_negative() {
        let (a, b, _) = ids();
        let mut tc = TimingConstraints::new(2);
        assert!(matches!(tc.add(a, a, 1), Err(Error::SelfLoop(_))));
        assert!(matches!(
            tc.add(a, ComponentId::new(5), 1),
            Err(Error::ComponentOutOfRange { .. })
        ));
        assert!(matches!(
            tc.add(a, b, -3),
            Err(Error::NegativeValue { .. })
        ));
    }

    #[test]
    fn iterators_agree() {
        let (a, b, c) = ids();
        let mut tc = TimingConstraints::new(3);
        tc.add(a, b, 1).unwrap();
        tc.add(c, b, 2).unwrap();
        tc.add(a, c, 3).unwrap();
        assert_eq!(tc.iter().count(), 3);
        assert_eq!(tc.constraints_from(a).count(), 2);
        let mut into_b: Vec<_> = tc.constraints_into(b).collect();
        into_b.sort();
        assert_eq!(into_b, vec![(a, 1), (c, 2)]);
    }

    #[test]
    fn set_overwrites_loosens_and_removes() {
        let (a, b, _) = ids();
        let mut tc = TimingConstraints::new(3);
        assert_eq!(tc.set(a, b, 5).unwrap(), None);
        assert_eq!(tc.get(a, b), Some(5));
        // Loosening is allowed (unlike `add`).
        assert_eq!(tc.set(a, b, 9).unwrap(), Some(5));
        assert_eq!(tc.get(a, b), Some(9));
        assert_eq!(tc.len(), 1);
        // NO_CONSTRAINT removes.
        assert_eq!(tc.set(a, b, NO_CONSTRAINT).unwrap(), Some(9));
        assert!(tc.is_empty());
        assert_eq!(tc.constraints_into(b).count(), 0);
        assert_eq!(tc.remove(a, b).unwrap(), None);
    }

    #[test]
    fn detach_and_grow() {
        let (a, b, c) = ids();
        let mut tc = TimingConstraints::new(3);
        tc.add(a, b, 1).unwrap();
        tc.add(c, b, 2).unwrap();
        tc.add(b, c, 3).unwrap();
        assert_eq!(tc.detach(b).unwrap(), 3);
        assert!(tc.is_empty());
        assert_eq!(tc.constraints_from(c).count(), 0);
        tc.grow(5);
        assert_eq!(tc.component_count(), 5);
        tc.add(ComponentId::new(4), a, 2).unwrap();
        assert_eq!(tc.len(), 1);
        tc.grow(2); // shrinking is a no-op
        assert_eq!(tc.component_count(), 5);
    }

    #[test]
    fn tighten_all_clamps_at_zero() {
        let (a, b, c) = ids();
        let mut tc = TimingConstraints::new(3);
        tc.add(a, b, 5).unwrap();
        tc.add(b, c, 1).unwrap();
        assert_eq!(tc.tighten_all(2).unwrap(), 2);
        assert_eq!(tc.get(a, b), Some(3));
        assert_eq!(tc.get(b, c), Some(0));
        // Already at 0: unchanged, not counted.
        assert_eq!(tc.tighten_all(1).unwrap(), 1);
        assert_eq!(tc.get(b, c), Some(0));
        assert!(tc.tighten_all(-1).is_err());
        assert_eq!(tc.tighten_all(0).unwrap(), 0);
    }

    #[test]
    fn paper_example_constraints() {
        // §3.3: D_C(a,b) = D_C(b,a) = 1, D_C(b,c) = D_C(c,b) = 1, (a,c) free.
        let (a, b, c) = ids();
        let mut tc = TimingConstraints::new(3);
        tc.add_symmetric(a, b, 1).unwrap();
        tc.add_symmetric(b, c, 1).unwrap();
        assert_eq!(tc.len(), 4);
        assert_eq!(tc.limit(a, c), NO_CONSTRAINT);
        assert_eq!(tc.limit(a, b), 1);
    }
}
