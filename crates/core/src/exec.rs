//! Solve-execution control: time/iteration budgets, cooperative
//! cancellation, and the status a bounded solve finished with.
//!
//! The solvers in this workspace are open-ended iterative searches — the
//! paper's STEP 1–8 loop, FM passes, KL outer loops, annealing levels — and
//! a production caller (the CLI under a `--time-limit-ms`, a future daemon
//! handling a `CancelJob`) needs to bound them without losing the work done
//! so far. The contract implemented here is the *anytime* contract:
//!
//! * every solver checks an [`ExecCtx`] at its iteration boundaries
//!   (a *cooperative check*: one relaxed atomic load plus, when a deadline
//!   is set, one `Instant::now()`),
//! * an expired [`Budget`] or a fired [`CancelToken`] makes the solver
//!   return its **best feasible result so far** with the matching
//!   [`ExecStatus`] instead of erroring, and
//! * an unbounded context is zero-cost: the check short-circuits on plain
//!   `Option` tests, emits no events, and leaves traces byte-identical to
//!   an unbudgeted solve.
//!
//! Deriving a *first* feasible iterate (the B = 0 bootstrap when a solver
//! is started without an initial assignment) counts as minimum work and is
//! not interrupted — a budget bounds the improvement search, not the
//! feasibility bootstrap — so "best feasible so far" is well-defined
//! whenever the instance itself is feasible.
//!
//! [`catch_panic`] is the companion isolation primitive: it converts a
//! worker panic into a typed [`Error::Internal`](crate::Error::Internal) so
//! one poisoned multistart run cannot abort the process or discard its
//! siblings' results.

use crate::Error;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a bounded solve finished. Carried on every
/// [`SolveReport`](https://docs.rs/qbp-solver) so callers can distinguish a
/// converged answer from a truncated-but-usable one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExecStatus {
    /// The solver ran to its natural termination.
    #[default]
    Completed,
    /// The deadline or iteration cap expired; the result is the best
    /// feasible iterate found before the cooperative check fired.
    TimedOut,
    /// A [`CancelToken`] fired; the result is the best feasible iterate
    /// found before the cooperative check observed it.
    Cancelled,
}

impl ExecStatus {
    /// Stable lower-case name used in CLI output and traces.
    pub fn as_str(self) -> &'static str {
        match self {
            ExecStatus::Completed => "completed",
            ExecStatus::TimedOut => "timed_out",
            ExecStatus::Cancelled => "cancelled",
        }
    }

    /// Whether the solve ran to natural termination.
    pub fn is_completed(self) -> bool {
        matches!(self, ExecStatus::Completed)
    }

    /// The more severe of two statuses (`Cancelled` > `TimedOut` >
    /// `Completed`) — what a driver composing several bounded sub-solves
    /// (multistart, the V-cycle) reports for the whole.
    pub fn merge(self, other: ExecStatus) -> ExecStatus {
        match (self, other) {
            (ExecStatus::Cancelled, _) | (_, ExecStatus::Cancelled) => ExecStatus::Cancelled,
            (ExecStatus::TimedOut, _) | (_, ExecStatus::TimedOut) => ExecStatus::TimedOut,
            _ => ExecStatus::Completed,
        }
    }
}

impl std::fmt::Display for ExecStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A resource budget for one solve: a wall-clock deadline and/or an
/// iteration cap. Both are optional; the default budget is unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Absolute wall-clock instant past which the solve must wind down.
    pub deadline: Option<Instant>,
    /// Maximum cooperative-check iterations before the solve winds down
    /// (counted by the driver that owns the loop, not globally).
    pub max_iters: Option<usize>,
}

impl Budget {
    /// A budget with no limits.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A budget expiring `limit` from now.
    pub fn with_time_limit(limit: Duration) -> Budget {
        Budget {
            deadline: Some(Instant::now() + limit),
            max_iters: None,
        }
    }

    /// A budget expiring at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Budget {
        Budget {
            deadline: Some(deadline),
            max_iters: None,
        }
    }

    /// A budget capped at `max_iters` cooperative-check iterations.
    pub fn with_max_iters(max_iters: usize) -> Budget {
        Budget {
            deadline: None,
            max_iters: Some(max_iters),
        }
    }

    /// Caps this budget's iterations (keeping any deadline).
    pub fn max_iters(mut self, max_iters: usize) -> Budget {
        self.max_iters = Some(max_iters);
        self
    }

    /// `true` when neither a deadline nor an iteration cap is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_iters.is_none()
    }
}

/// The flag a [`CancelToken`] polls: either shared ownership (`Arc`, the
/// daemon/job case) or a `'static` cell (the CLI's SIGINT flag, settable
/// from a signal handler without allocation).
#[derive(Debug, Clone)]
enum CancelFlag {
    Shared(Arc<AtomicBool>),
    Static(&'static AtomicBool),
}

/// A lock-free cancellation handle. Clones observe the same flag; firing is
/// idempotent and never blocks, so it is safe from any thread — including a
/// signal handler when constructed over a `'static` flag.
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: CancelFlag,
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> CancelToken {
        CancelToken {
            flag: CancelFlag::Shared(Arc::new(AtomicBool::new(false))),
        }
    }

    /// A token polling an external `'static` flag (e.g. one set by a
    /// SIGINT handler). The flag's current value is respected as-is.
    pub fn from_static(flag: &'static AtomicBool) -> CancelToken {
        CancelToken {
            flag: CancelFlag::Static(flag),
        }
    }

    /// Fires the token. All clones observe it at their next poll.
    pub fn cancel(&self) {
        match &self.flag {
            CancelFlag::Shared(f) => f.store(true, Ordering::Release),
            CancelFlag::Static(f) => f.store(true, Ordering::Release),
        }
    }

    /// Whether the token has fired (one relaxed atomic load).
    pub fn is_cancelled(&self) -> bool {
        match &self.flag {
            CancelFlag::Shared(f) => f.load(Ordering::Relaxed),
            CancelFlag::Static(f) => f.load(Ordering::Relaxed),
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// The execution context threaded through every solver: a [`Budget`] plus
/// an optional [`CancelToken`]. Cheap to clone (one `Arc` bump at most);
/// the same context is shared by all workers of a multistart or V-cycle.
#[derive(Debug, Clone, Default)]
pub struct ExecCtx {
    budget: Budget,
    cancel: Option<CancelToken>,
}

impl ExecCtx {
    /// A context with no limits and no cancellation: checks short-circuit
    /// and the solve behaves exactly as an unbudgeted one.
    pub fn unbounded() -> ExecCtx {
        ExecCtx::default()
    }

    /// A context enforcing `budget` only.
    pub fn with_budget(budget: Budget) -> ExecCtx {
        ExecCtx {
            budget,
            cancel: None,
        }
    }

    /// Attaches (or replaces) the cancellation token.
    pub fn cancel_token(mut self, token: CancelToken) -> ExecCtx {
        self.cancel = Some(token);
        self
    }

    /// The budget this context enforces.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// `true` when checks can never fire: no deadline, no iteration cap, no
    /// token. Solvers may use this to skip bookkeeping entirely.
    pub fn is_unbounded(&self) -> bool {
        self.budget.is_unlimited() && self.cancel.is_none()
    }

    /// The cooperative check, called at iteration boundaries with the
    /// 1-based iteration about to start. Returns `None` to keep going, or
    /// the [`ExecStatus`] to wind down with. Priority: an explicit cancel
    /// beats a budget expiry. On the unbounded context this is two `None`
    /// tests and a `None` return — no clock read, no atomic.
    #[inline]
    pub fn check(&self, iteration: usize) -> Option<ExecStatus> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(ExecStatus::Cancelled);
            }
        }
        if let Some(cap) = self.budget.max_iters {
            if iteration > cap {
                return Some(ExecStatus::TimedOut);
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if Instant::now() >= deadline {
                return Some(ExecStatus::TimedOut);
            }
        }
        None
    }

    /// Derives a child context for a sub-solve that may run at most
    /// `max_iters` of its own iterations under this context's deadline and
    /// token (the V-cycle's capped refinement solves, ECO's escalation
    /// ladder).
    pub fn capped(&self, max_iters: usize) -> ExecCtx {
        ExecCtx {
            budget: Budget {
                deadline: self.budget.deadline,
                max_iters: Some(max_iters),
            },
            cancel: self.cancel.clone(),
        }
    }

    /// This context without its iteration cap (deadline and token kept):
    /// what a driver passes to inner solves whose own iteration budgets are
    /// configured separately.
    pub fn uncapped(&self) -> ExecCtx {
        ExecCtx {
            budget: Budget {
                deadline: self.budget.deadline,
                max_iters: None,
            },
            cancel: self.cancel.clone(),
        }
    }
}

/// Runs `f`, converting a panic into [`Error::Internal`] carrying the
/// panic message. The process-global panic hook still prints the backtrace
/// (callers that want quiet isolation can suppress it themselves); what
/// this guarantees is that the panic becomes a value instead of unwinding
/// through — the panic-isolation boundary around multistart runs and batch
/// workers.
pub fn catch_panic<T>(f: impl FnOnce() -> T) -> Result<T, Error> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| Error::Internal {
        message: panic_message(&*payload),
    })
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_fires() {
        let exec = ExecCtx::unbounded();
        assert!(exec.is_unbounded());
        for k in [1usize, 100, 1_000_000] {
            assert_eq!(exec.check(k), None);
        }
    }

    #[test]
    fn iteration_cap_fires_past_the_cap() {
        let exec = ExecCtx::with_budget(Budget::with_max_iters(3));
        assert_eq!(exec.check(3), None);
        assert_eq!(exec.check(4), Some(ExecStatus::TimedOut));
    }

    #[test]
    fn expired_deadline_fires() {
        let exec = ExecCtx::with_budget(Budget::with_deadline(Instant::now()));
        assert_eq!(exec.check(1), Some(ExecStatus::TimedOut));
        let future = ExecCtx::with_budget(Budget::with_time_limit(Duration::from_secs(3600)));
        assert_eq!(future.check(1), None);
    }

    #[test]
    fn cancel_beats_budget() {
        let token = CancelToken::new();
        let exec = ExecCtx::with_budget(Budget::with_max_iters(0)).cancel_token(token.clone());
        assert_eq!(exec.check(1), Some(ExecStatus::TimedOut));
        token.cancel();
        assert_eq!(exec.check(1), Some(ExecStatus::Cancelled));
        // Clones observe the same flag.
        let clone = exec.clone();
        assert_eq!(clone.check(1), Some(ExecStatus::Cancelled));
    }

    #[test]
    fn static_flag_token() {
        static FLAG: AtomicBool = AtomicBool::new(false);
        let token = CancelToken::from_static(&FLAG);
        assert!(!token.is_cancelled());
        FLAG.store(true, Ordering::SeqCst);
        assert!(token.is_cancelled());
        FLAG.store(false, Ordering::SeqCst);
        token.cancel();
        assert!(token.is_cancelled());
        FLAG.store(false, Ordering::SeqCst);
    }

    #[test]
    fn status_merge_prefers_severity() {
        use ExecStatus::*;
        assert_eq!(Completed.merge(Completed), Completed);
        assert_eq!(Completed.merge(TimedOut), TimedOut);
        assert_eq!(TimedOut.merge(Cancelled), Cancelled);
        assert_eq!(Cancelled.merge(Completed), Cancelled);
        assert_eq!(TimedOut.as_str(), "timed_out");
    }

    #[test]
    fn capped_child_keeps_deadline_and_token() {
        let token = CancelToken::new();
        let exec = ExecCtx::with_budget(Budget::with_time_limit(Duration::from_secs(3600)))
            .cancel_token(token.clone());
        let child = exec.capped(2);
        assert_eq!(child.check(2), None);
        assert_eq!(child.check(3), Some(ExecStatus::TimedOut));
        token.cancel();
        assert_eq!(child.check(1), Some(ExecStatus::Cancelled));
        let uncapped = exec.uncapped();
        assert_eq!(uncapped.budget().max_iters, None);
    }

    #[test]
    fn catch_panic_yields_typed_internal_error() {
        let ok = catch_panic(|| 41 + 1);
        assert_eq!(ok.unwrap(), 42);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the test log clean
        let err = catch_panic(|| -> i32 { panic!("injected: eta poisoned") });
        std::panic::set_hook(prev);
        match err {
            Err(Error::Internal { message }) => assert!(message.contains("eta poisoned")),
            other => panic!("expected Internal, got {other:?}"),
        }
    }
}
