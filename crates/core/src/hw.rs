//! Host-hardware probing and hardware-adaptive solver configuration.
//!
//! Million-component instances need different knobs than the paper's
//! 500-component suite: more V-cycle levels, a larger coarsest problem, a
//! thread count matched to the machine, and a multistart width that does not
//! thrash a small RAM budget. This module detects what the host offers
//! ([`HostInfo::detect`]: core count via `std::thread::available_parallelism`,
//! available RAM from `/proc/meminfo` where present) and derives a
//! deterministic [`AutoProfile`] from `(host, component count)` — the same
//! inputs always produce the same profile, so `--auto` runs are reproducible
//! on a given machine and the chosen profile is recorded in the solve report
//! and the JSONL trace for post-hoc comparison across machines.
//!
//! Also home to the peak-RSS probe ([`peak_rss_bytes`], `VmHWM` from
//! `/proc/self/status`) used by the scale benchmark.

/// What the host machine offers: detected once, then treated as plain data
/// so the profile derivation stays a pure function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostInfo {
    /// Logical cores available to this process (≥ 1).
    pub cores: usize,
    /// Available (not total) RAM in bytes, when the platform exposes it
    /// (`MemAvailable` in `/proc/meminfo`); `None` elsewhere.
    pub available_ram: Option<u64>,
}

impl HostInfo {
    /// Probes the current host. Never fails: falls back to one core and
    /// unknown RAM when the platform hides the numbers.
    pub fn detect() -> HostInfo {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        HostInfo {
            cores,
            available_ram: meminfo_available_bytes(),
        }
    }

    /// A fully specified host, for tests and for replaying another
    /// machine's profile derivation.
    pub fn from_parts(cores: usize, available_ram: Option<u64>) -> HostInfo {
        HostInfo {
            cores: cores.max(1),
            available_ram,
        }
    }
}

/// `MemAvailable` from `/proc/meminfo`, in bytes.
fn meminfo_available_bytes() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/meminfo").ok()?;
    parse_meminfo_available(&text)
}

fn parse_meminfo_available(text: &str) -> Option<u64> {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("MemAvailable:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), when the platform exposes it. Monotonic over the
/// process lifetime — to attribute a peak to one phase, measure in a fresh
/// process or difference against the value taken before the phase.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_field("VmHWM:")
}

/// Current resident set size of this process in bytes (`VmRSS`).
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_field("VmRSS:")
}

fn proc_status_field(field: &'static str) -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// The knobs `--auto` picks, plus the host facts they were derived from.
/// Recorded verbatim in `SolveReport::auto_profile` and the JSONL trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoProfile {
    /// Cores the derivation saw.
    pub cores: usize,
    /// Available RAM the derivation saw, in MiB (`0` = unknown).
    pub available_ram_mb: u64,
    /// Solver worker-thread budget (the `threads` config field).
    pub threads: usize,
    /// V-cycle depth (`--mlqbp-levels`).
    pub mlqbp_levels: usize,
    /// Coarsest-problem size floor (`--mlqbp-min-size`).
    pub mlqbp_min_size: usize,
    /// Multistart width (`--runs` for flat QBP, coarsest-level restarts for
    /// mlqbp).
    pub multistart_width: usize,
}

/// Rough per-component working-set estimate used by the RAM guard, in
/// bytes: CSR records both directions (~40 B each at average degree ~4),
/// the η/gain workspaces (8 B × M per component at M ≤ 16), profile
/// aggregates, and the V-cycle's coarser copies (geometric series ≈ 2× the
/// finest level). Deliberately conservative.
const BYTES_PER_COMPONENT: u64 = 600;

impl AutoProfile {
    /// Derives the profile for a `components`-sized instance on `host`.
    /// Pure: identical inputs give identical profiles.
    ///
    /// Heuristics, each documented where applied: threads ride the core
    /// count (capped — the deterministic chunked maps stop scaling past 8
    /// workers on these row counts); the V-cycle gets enough levels to
    /// coarsen down to the size floor assuming ~2× shrink per level; the
    /// floor itself grows slowly with N so the coarsest multistart stays
    /// meaningful; multistart width rides the core count and is cut to 1
    /// when the estimated working set crowds available RAM.
    pub fn for_problem(host: &HostInfo, components: usize) -> AutoProfile {
        let n = components.max(1);
        // Workers past 8 stop paying for themselves on the row counts the
        // chunked maps see; never more workers than cores.
        let threads = host.cores.min(8);
        // Coarsest-size floor: 64 (the MlqbpConfig default) up to 10^5
        // components, then grow ~n/1024 so refinement has signal, capped at
        // 512 to bound the coarsest multistart cost.
        let mlqbp_min_size = (n / 1024).clamp(64, 512);
        // Heavy-edge matching shrinks ~2× per level: levels = log2(n /
        // floor), clamped to the config's [1, 12] useful range.
        let mut levels = 0usize;
        let mut remaining = n;
        while remaining > mlqbp_min_size && levels < 12 {
            remaining /= 2;
            levels += 1;
        }
        let mlqbp_levels = levels.max(1);
        // Multistart width rides the cores (serial multistart on a laden
        // machine is pure slowdown), capped at 8 like the thread budget.
        let mut multistart_width = host.cores.clamp(1, 8);
        // RAM guard: if the conservative working-set estimate for
        // `multistart_width` concurrent starts exceeds half of available
        // RAM, fall back to a single start (quality degrades gracefully;
        // swapping does not).
        if let Some(ram) = host.available_ram {
            let estimate = n as u64 * BYTES_PER_COMPONENT * multistart_width as u64;
            if estimate > ram / 2 {
                multistart_width = 1;
            }
        }
        AutoProfile {
            cores: host.cores,
            available_ram_mb: host.available_ram.unwrap_or(0) / (1024 * 1024),
            threads,
            mlqbp_levels,
            mlqbp_min_size,
            multistart_width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_never_fails() {
        let host = HostInfo::detect();
        assert!(host.cores >= 1);
        // On Linux both probes should resolve; elsewhere None is fine.
        if cfg!(target_os = "linux") {
            assert!(host.available_ram.is_some());
            assert!(peak_rss_bytes().is_some());
            assert!(current_rss_bytes().is_some());
            assert!(peak_rss_bytes() >= current_rss_bytes());
        }
    }

    #[test]
    fn meminfo_parse_extracts_available() {
        let text = "MemTotal:       16384000 kB\nMemFree:         1024000 kB\nMemAvailable:    8192000 kB\n";
        assert_eq!(parse_meminfo_available(text), Some(8_192_000 * 1024));
        assert_eq!(parse_meminfo_available("MemTotal: 1 kB\n"), None);
    }

    #[test]
    fn profile_is_deterministic_and_monotone_in_size() {
        let host = HostInfo::from_parts(4, Some(8 << 30));
        let small = AutoProfile::for_problem(&host, 1_000);
        assert_eq!(small, AutoProfile::for_problem(&host, 1_000));
        let large = AutoProfile::for_problem(&host, 1_000_000);
        assert!(large.mlqbp_levels >= small.mlqbp_levels);
        assert!(large.mlqbp_min_size >= small.mlqbp_min_size);
        assert_eq!(small.threads, 4);
        assert_eq!(small.multistart_width, 4);
    }

    #[test]
    fn defaults_match_config_floor_at_paper_scale() {
        // At paper-suite sizes the profile should reproduce the MlqbpConfig
        // default floor of 64 and at least one level.
        let host = HostInfo::from_parts(1, None);
        let p = AutoProfile::for_problem(&host, 550);
        assert_eq!(p.mlqbp_min_size, 64);
        assert!(p.mlqbp_levels >= 1);
        assert_eq!(p.threads, 1);
        assert_eq!(p.multistart_width, 1);
        assert_eq!(p.available_ram_mb, 0);
    }

    #[test]
    fn ram_guard_cuts_multistart_width() {
        // 10^6 components × 600 B × 4 starts = ~2.4 GB > half of 1 GiB.
        let tight = HostInfo::from_parts(4, Some(1 << 30));
        let p = AutoProfile::for_problem(&tight, 1_000_000);
        assert_eq!(p.multistart_width, 1);
        let roomy = HostInfo::from_parts(4, Some(64 << 30));
        assert_eq!(AutoProfile::for_problem(&roomy, 1_000_000).multistart_width, 4);
    }

    #[test]
    fn levels_reach_the_floor_with_twofold_shrink() {
        let host = HostInfo::from_parts(8, None);
        let p = AutoProfile::for_problem(&host, 100_000);
        // 100_000 / 2^levels ≤ min_size must hold.
        assert!(100_000 >> p.mlqbp_levels <= p.mlqbp_min_size);
        assert!(p.mlqbp_levels <= 12);
    }
}
