//! Plain-text serialization of problems and assignments — the `.qbp` format.
//!
//! The format is line-oriented, human-editable and diff-friendly, in the
//! spirit of the classic EDA bookshelf formats:
//!
//! ```text
//! # comments and blank lines are ignored
//! qbp 1                      # header: format name + version
//! scales 1 1                 # alpha beta (optional; default 1 1)
//!
//! component <name> <size>    # one per component, in id order
//! wire <from> <to> <count>   # directed connection (names or indices)
//! wires <a> <b> <count>      # symmetric convenience
//!
//! partitions <m>             # partition count; capacities follow
//! capacity <i> <c>           # per partition (or `capacities c0 c1 ...`)
//! wirecost <i1> <i2> <b>     # B matrix entry (unspecified entries are 0)
//! delay <i1> <i2> <d>        # D matrix entry (unspecified entries are 0)
//! grid <rows> <cols> <cap>   # shorthand: Manhattan B = D, uniform capacity
//!
//! timing <from> <to> <max>   # D_C entry (directed)
//! linear <i> <j> <p>         # P matrix entry (unspecified entries are 0)
//! ```
//!
//! Assignments use a sibling one-line-per-component format:
//!
//! ```text
//! assign <component> <partition>
//! ```
//!
//! # Example
//!
//! ```
//! use qbp_core::io::{parse_problem, write_problem};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let text = "\
//! qbp 1
//! component a 10
//! component b 20
//! wires a b 5
//! grid 2 2 30
//! timing a b 1
//! ";
//! let problem = parse_problem(text)?;
//! assert_eq!(problem.n(), 2);
//! assert_eq!(problem.m(), 4);
//! // Round-trips.
//! let again = parse_problem(&write_problem(&problem))?;
//! assert_eq!(again, problem);
//! # Ok(())
//! # }
//! ```

use crate::{
    Assignment, Circuit, ComponentId, Cost, Delay, DenseMatrix, PartitionId, PartitionTopology,
    Problem, ProblemBuilder, Size, TimingConstraints,
};
use std::collections::HashMap;
use std::fmt;

/// Errors from parsing the `.qbp` text formats.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The `qbp <version>` header line is missing or unsupported.
    BadHeader {
        /// 1-based line number of the offending line (0 when the input
        /// ended before any header line was seen).
        line: usize,
    },
    /// A line had an unknown directive.
    UnknownDirective {
        /// 1-based line number.
        line: usize,
        /// The directive word.
        directive: String,
    },
    /// A line had the wrong number or format of arguments.
    BadArguments {
        /// 1-based line number.
        line: usize,
        /// What the directive expected.
        expected: &'static str,
    },
    /// A component name (or index) did not resolve.
    UnknownComponent {
        /// 1-based line number.
        line: usize,
        /// The unresolved token.
        name: String,
    },
    /// A partition index was out of range.
    BadPartition {
        /// 1-based line number.
        line: usize,
        /// The offending index.
        index: usize,
    },
    /// A directive appeared before its prerequisites (e.g. `capacity`
    /// before `partitions`).
    OutOfOrder {
        /// 1-based line number.
        line: usize,
        /// What was missing.
        needs: &'static str,
    },
    /// The assembled problem failed semantic validation.
    Invalid(crate::Error),
    /// Reading from the underlying stream failed mid-parse (streaming
    /// reader only; the message is captured as text so the error stays
    /// `Clone` and comparable).
    Io {
        /// 1-based number of the line being read when the stream failed.
        line: usize,
        /// The underlying I/O error message.
        message: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadHeader { line } => {
                write!(f, "line {line}: missing or unsupported `qbp <version>` header")
            }
            ParseError::UnknownDirective { line, directive } => {
                write!(f, "line {line}: unknown directive `{directive}`")
            }
            ParseError::BadArguments { line, expected } => {
                write!(f, "line {line}: expected {expected}")
            }
            ParseError::UnknownComponent { line, name } => {
                write!(f, "line {line}: unknown component `{name}`")
            }
            ParseError::BadPartition { line, index } => {
                write!(f, "line {line}: partition index {index} out of range")
            }
            ParseError::OutOfOrder { line, needs } => {
                write!(f, "line {line}: directive requires {needs} first")
            }
            ParseError::Invalid(e) => write!(f, "invalid problem: {e}"),
            ParseError::Io { line, message } => {
                write!(f, "line {line}: read failed: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::Error> for ParseError {
    fn from(e: crate::Error) -> Self {
        ParseError::Invalid(e)
    }
}

/// Tokenized, comment-stripped lines with their original numbers.
fn logical_lines(text: &str) -> impl Iterator<Item = (usize, Vec<&str>)> {
    text.lines().enumerate().filter_map(|(k, raw)| {
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            None
        } else {
            Some((k + 1, body.split_whitespace().collect()))
        }
    })
}

/// Upper bound on the partition count a `.qbp` file may declare. The
/// topology holds two dense `m × m` matrices, so `m` from an untrusted file
/// must be bounded *before* allocation — at this cap each matrix is 128 MiB,
/// far beyond any physical partitioning target but still safe to allocate.
pub const MAX_PARTITIONS: usize = 4096;

struct PartitionDraft {
    capacities: Vec<Size>,
    wire_cost: DenseMatrix<Cost>,
    delay: DenseMatrix<Delay>,
}

/// Incremental `.qbp` parser: feed one physical line at a time with
/// [`ProblemAssembler::line`], then [`ProblemAssembler::finish`]. This is the
/// streaming core behind both [`parse_problem`] (whole-text convenience) and
/// [`read_problem`] (any `BufRead`, one reused line buffer) — million-line
/// circuit files never need to sit in memory as a `String`, and directives
/// apply to the growing [`Circuit`] as they arrive instead of accumulating in
/// intermediate lists. Timing entries whose endpoints are already declared
/// resolve eagerly to compact numeric triples; only genuine forward
/// references (allowed by the format) defer their name strings.
pub struct ProblemAssembler {
    header_seen: bool,
    circuit: Circuit,
    names: HashMap<String, ComponentId>,
    draft: Option<PartitionDraft>,
    timing_resolved: Vec<(ComponentId, ComponentId, Delay)>,
    timing_deferred: Vec<(usize, String, String, Delay)>,
    linear_entries: Vec<(usize, usize, usize, Cost)>,
    scales: (Cost, Cost),
}

impl Default for ProblemAssembler {
    fn default() -> Self {
        Self::new()
    }
}

fn resolve(
    names: &HashMap<String, ComponentId>,
    circuit: &Circuit,
    line: usize,
    tok: &str,
) -> Result<ComponentId, ParseError> {
    if let Some(&id) = names.get(tok) {
        return Ok(id);
    }
    if let Ok(idx) = tok.parse::<usize>() {
        if idx < circuit.len() {
            return Ok(ComponentId::new(idx));
        }
    }
    Err(ParseError::UnknownComponent {
        line,
        name: tok.to_string(),
    })
}

impl ProblemAssembler {
    /// A fresh assembler expecting the `qbp 1` header line first.
    pub fn new() -> ProblemAssembler {
        ProblemAssembler {
            header_seen: false,
            circuit: Circuit::new(),
            names: HashMap::new(),
            draft: None,
            timing_resolved: Vec::new(),
            timing_deferred: Vec::new(),
            linear_entries: Vec::new(),
            scales: (1, 1),
        }
    }

    /// Consumes one physical line (`lineno` is 1-based, for error
    /// reporting). Comments and blank lines are accepted and ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] locating the offending line.
    pub fn line(&mut self, lineno: usize, raw: &str) -> Result<(), ParseError> {
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            return Ok(());
        }
        let toks: Vec<&str> = body.split_whitespace().collect();
        if !self.header_seen {
            if toks.len() == 2 && toks[0] == "qbp" && toks[1] == "1" {
                self.header_seen = true;
                return Ok(());
            }
            return Err(ParseError::BadHeader { line: lineno });
        }
        self.directive(lineno, &toks)
    }

    fn directive(&mut self, line: usize, toks: &[&str]) -> Result<(), ParseError> {
        let circuit = &mut self.circuit;
        let names = &mut self.names;
        let draft = &mut self.draft;
        match toks[0] {
            "scales" => {
                let (a, b) = match (toks.get(1), toks.get(2)) {
                    (Some(a), Some(b)) => (a.parse::<Cost>(), b.parse::<Cost>()),
                    _ => {
                        return Err(ParseError::BadArguments {
                            line,
                            expected: "scales <alpha> <beta>",
                        })
                    }
                };
                match (a, b) {
                    (Ok(a), Ok(b)) => self.scales = (a, b),
                    _ => {
                        return Err(ParseError::BadArguments {
                            line,
                            expected: "scales <alpha> <beta>",
                        })
                    }
                }
            }
            "component" => {
                let (name, size) = match (toks.get(1), toks.get(2).map(|s| s.parse::<Size>())) {
                    (Some(name), Some(Ok(size))) => (name.to_string(), size),
                    _ => {
                        return Err(ParseError::BadArguments {
                            line,
                            expected: "component <name> <size>",
                        })
                    }
                };
                let id = circuit.add_component(name.clone(), size);
                names.insert(name, id);
            }
            "wire" | "wires" => {
                let (a, b, w) = match (toks.get(1), toks.get(2), toks.get(3)) {
                    (Some(a), Some(b), Some(w)) => (*a, *b, *w),
                    _ => {
                        return Err(ParseError::BadArguments {
                            line,
                            expected: "wire(s) <from> <to> <count>",
                        })
                    }
                };
                let from = resolve(names, circuit, line, a)?;
                let to = resolve(names, circuit, line, b)?;
                let count = w.parse::<Cost>().map_err(|_| ParseError::BadArguments {
                    line,
                    expected: "an integer wire count",
                })?;
                if toks[0] == "wire" {
                    circuit.add_connection(from, to, count)?;
                } else {
                    circuit.add_wires(from, to, count)?;
                }
            }
            "partitions" => {
                let m = toks
                    .get(1)
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&m| m > 0 && m <= MAX_PARTITIONS)
                    .ok_or(ParseError::BadArguments {
                        line,
                        expected: "partitions <m> with 0 < m <= 4096",
                    })?;
                *draft = Some(PartitionDraft {
                    capacities: vec![0; m],
                    wire_cost: DenseMatrix::filled(m, m, 0),
                    delay: DenseMatrix::filled(m, m, 0),
                });
            }
            "grid" => {
                let nums: Option<Vec<u64>> =
                    toks[1..].iter().map(|s| s.parse::<u64>().ok()).collect();
                let nums = nums.filter(|v| v.len() == 3).ok_or(ParseError::BadArguments {
                    line,
                    expected: "grid <rows> <cols> <capacity>",
                })?;
                // Bound rows × cols before the dense m × m topology matrices
                // are allocated; checked in u64 so the product cannot wrap.
                match nums[0].checked_mul(nums[1]) {
                    Some(m) if m <= MAX_PARTITIONS as u64 => {}
                    _ => {
                        return Err(ParseError::BadArguments {
                            line,
                            expected: "grid with rows * cols <= 4096",
                        })
                    }
                }
                let topo =
                    PartitionTopology::grid(nums[0] as usize, nums[1] as usize, nums[2])?;
                *draft = Some(PartitionDraft {
                    capacities: topo.capacities().to_vec(),
                    wire_cost: topo.wire_cost().clone(),
                    delay: topo.delay().clone(),
                });
            }
            "capacity" => {
                let d = draft.as_mut().ok_or(ParseError::OutOfOrder {
                    line,
                    needs: "`partitions` or `grid`",
                })?;
                let (i, c) = match (
                    toks.get(1).and_then(|s| s.parse::<usize>().ok()),
                    toks.get(2).and_then(|s| s.parse::<Size>().ok()),
                ) {
                    (Some(i), Some(c)) => (i, c),
                    _ => {
                        return Err(ParseError::BadArguments {
                            line,
                            expected: "capacity <partition> <units>",
                        })
                    }
                };
                if i >= d.capacities.len() {
                    return Err(ParseError::BadPartition { line, index: i });
                }
                d.capacities[i] = c;
            }
            "capacities" => {
                let d = draft.as_mut().ok_or(ParseError::OutOfOrder {
                    line,
                    needs: "`partitions` or `grid`",
                })?;
                let vals: Option<Vec<Size>> =
                    toks[1..].iter().map(|s| s.parse::<Size>().ok()).collect();
                let vals = vals.ok_or(ParseError::BadArguments {
                    line,
                    expected: "capacities <c0> <c1> ...",
                })?;
                if vals.len() != d.capacities.len() {
                    return Err(ParseError::BadArguments {
                        line,
                        expected: "one capacity per partition",
                    });
                }
                d.capacities = vals;
            }
            "wirecost" | "delay" => {
                let d = draft.as_mut().ok_or(ParseError::OutOfOrder {
                    line,
                    needs: "`partitions` or `grid`",
                })?;
                let (i1, i2, v) = match (
                    toks.get(1).and_then(|s| s.parse::<usize>().ok()),
                    toks.get(2).and_then(|s| s.parse::<usize>().ok()),
                    toks.get(3).and_then(|s| s.parse::<i64>().ok()),
                ) {
                    (Some(i1), Some(i2), Some(v)) => (i1, i2, v),
                    _ => {
                        return Err(ParseError::BadArguments {
                            line,
                            expected: "<i1> <i2> <value>",
                        })
                    }
                };
                let m = d.capacities.len();
                if i1 >= m || i2 >= m {
                    return Err(ParseError::BadPartition {
                        line,
                        index: i1.max(i2),
                    });
                }
                if toks[0] == "wirecost" {
                    d.wire_cost[(i1, i2)] = v;
                } else {
                    d.delay[(i1, i2)] = v;
                }
            }
            "timing" => {
                let (a, b, dc) = match (toks.get(1), toks.get(2), toks.get(3)) {
                    (Some(a), Some(b), Some(dc)) => (*a, *b, *dc),
                    _ => {
                        return Err(ParseError::BadArguments {
                            line,
                            expected: "timing <from> <to> <max-delay>",
                        })
                    }
                };
                let dc = dc.parse::<Delay>().map_err(|_| ParseError::BadArguments {
                    line,
                    expected: "an integer delay limit",
                })?;
                // Resolve eagerly when both endpoints are already declared
                // (the overwhelmingly common case — writers emit components
                // first), so streaming a million timing lines stores 16-byte
                // triples instead of heap strings. Genuine forward
                // references defer to `finish`.
                match (
                    resolve(names, circuit, line, a),
                    resolve(names, circuit, line, b),
                ) {
                    (Ok(from), Ok(to)) => self.timing_resolved.push((from, to, dc)),
                    _ => self
                        .timing_deferred
                        .push((line, a.to_string(), b.to_string(), dc)),
                }
            }
            "linear" => {
                let (i, j, p) = match (
                    toks.get(1).and_then(|s| s.parse::<usize>().ok()),
                    toks.get(2).and_then(|s| s.parse::<usize>().ok()),
                    toks.get(3).and_then(|s| s.parse::<Cost>().ok()),
                ) {
                    (Some(i), Some(j), Some(p)) => (i, j, p),
                    _ => {
                        return Err(ParseError::BadArguments {
                            line,
                            expected: "linear <partition> <component> <cost>",
                        })
                    }
                };
                self.linear_entries.push((line, i, j, p));
            }
            other => {
                return Err(ParseError::UnknownDirective {
                    line,
                    directive: other.to_string(),
                })
            }
        }
        Ok(())
    }

    /// Validates and builds the assembled [`Problem`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for a missing header or topology, an
    /// unresolvable deferred timing reference, or the semantic validation
    /// error from [`ProblemBuilder::build`].
    pub fn finish(self) -> Result<Problem, ParseError> {
        if !self.header_seen {
            return Err(ParseError::BadHeader { line: 0 });
        }
        let draft = self.draft.ok_or(ParseError::OutOfOrder {
            line: 0,
            needs: "`partitions` or `grid`",
        })?;
        let topology = PartitionTopology::new(draft.capacities, draft.wire_cost, draft.delay)?;

        let mut timing = TimingConstraints::new(self.circuit.len());
        for (from, to, dc) in self.timing_resolved {
            timing.add(from, to, dc)?;
        }
        for (line, a, b, dc) in self.timing_deferred {
            let from = resolve(&self.names, &self.circuit, line, &a)?;
            let to = resolve(&self.names, &self.circuit, line, &b)?;
            timing.add(from, to, dc)?;
        }

        let mut builder = ProblemBuilder::new(self.circuit, topology)
            .timing(timing)
            .scales(self.scales.0, self.scales.1);
        if !self.linear_entries.is_empty() {
            let m = builder_m(&builder);
            let n = builder_n(&builder);
            let mut p = DenseMatrix::filled(m, n, 0);
            for (line, i, j, v) in self.linear_entries {
                if i >= m {
                    return Err(ParseError::BadPartition { line, index: i });
                }
                if j >= n {
                    return Err(ParseError::UnknownComponent {
                        line,
                        name: j.to_string(),
                    });
                }
                p[(i, j)] = v;
            }
            builder = builder.linear_cost(p);
        }
        Ok(builder.build()?)
    }
}

/// Parses a `.qbp` problem description held in memory.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first offending line, or wrapping
/// the semantic validation error from [`ProblemBuilder::build`].
pub fn parse_problem(text: &str) -> Result<Problem, ParseError> {
    let mut asm = ProblemAssembler::new();
    for (k, raw) in text.lines().enumerate() {
        asm.line(k + 1, raw)?;
    }
    asm.finish()
}

/// Streams a `.qbp` problem description from any [`std::io::BufRead`],
/// reusing one line buffer — the file never needs to sit in memory as a
/// whole, which matters for generated million-component circuits.
///
/// # Errors
///
/// Returns [`ParseError::Io`] when the underlying read fails, otherwise
/// like [`parse_problem`].
pub fn read_problem<R: std::io::BufRead>(mut reader: R) -> Result<Problem, ParseError> {
    let mut asm = ProblemAssembler::new();
    let mut buf = String::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        let read = reader
            .read_line(&mut buf)
            .map_err(|e| ParseError::Io {
                line: lineno + 1,
                message: e.to_string(),
            })?;
        if read == 0 {
            break;
        }
        lineno += 1;
        // Fault-injection point: a corrupted read mangles the line in a way
        // the directive parser *detects* — the result is a typed ParseError
        // carrying this line's number, never a silently wrong problem.
        if crate::fault::fault_point(crate::fault::POINT_IO_READ).is_corrupt() {
            buf.clear();
            buf.push_str("\u{fffd}corrupted-read");
        }
        asm.line(lineno, &buf)?;
    }
    asm.finish()
}

// ProblemBuilder doesn't expose its internals; these helpers peek through a
// throwaway clone of the builder's parts via Debug-free accessors. Keeping
// the builder opaque is worth two small helpers here.
fn builder_m(b: &ProblemBuilder) -> usize {
    b.topology_len()
}

fn builder_n(b: &ProblemBuilder) -> usize {
    b.circuit_len()
}

/// Writes a problem in the `.qbp` format; [`parse_problem`] round-trips it.
pub fn write_problem(problem: &Problem) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("qbp 1\n");
    let _ = writeln!(out, "scales {} {}", problem.alpha(), problem.beta());
    for (_, comp) in problem.circuit().iter() {
        let _ = writeln!(out, "component {} {}", comp.name(), comp.size());
    }
    for (a, b, w) in problem.circuit().edges() {
        let _ = writeln!(out, "wire {} {} {w}", a.index(), b.index());
    }
    let m = problem.m();
    let _ = writeln!(out, "partitions {m}");
    let caps: Vec<String> = problem
        .topology()
        .capacities()
        .iter()
        .map(u64::to_string)
        .collect();
    let _ = writeln!(out, "capacities {}", caps.join(" "));
    for (i1, i2, &v) in problem.topology().wire_cost().indexed_iter() {
        if v != 0 {
            let _ = writeln!(out, "wirecost {i1} {i2} {v}");
        }
    }
    for (i1, i2, &v) in problem.topology().delay().indexed_iter() {
        if v != 0 {
            let _ = writeln!(out, "delay {i1} {i2} {v}");
        }
    }
    for (a, b, dc) in problem.timing().iter() {
        let _ = writeln!(out, "timing {} {} {dc}", a.index(), b.index());
    }
    if let Some(p) = problem.linear_cost() {
        for (i, j, &v) in p.indexed_iter() {
            if v != 0 {
                let _ = writeln!(out, "linear {i} {j} {v}");
            }
        }
    }
    out
}

/// Parses a one-assignment-per-line file (`assign <component> <partition>`,
/// names or indices) against a problem.
///
/// Components left unassigned default to partition 0 only if
/// `allow_partial`; otherwise they are an error.
///
/// # Errors
///
/// Returns a [`ParseError`] for unresolvable components, out-of-range
/// partitions, or (without `allow_partial`) missing components.
pub fn parse_assignment(
    text: &str,
    problem: &Problem,
    allow_partial: bool,
) -> Result<Assignment, ParseError> {
    let mut names: HashMap<&str, ComponentId> = HashMap::new();
    for (id, comp) in problem.circuit().iter() {
        names.insert(comp.name(), id);
    }
    let mut parts: Vec<Option<u32>> = vec![None; problem.n()];
    for (line, toks) in logical_lines(text) {
        if toks[0] != "assign" || toks.len() != 3 {
            return Err(ParseError::BadArguments {
                line,
                expected: "assign <component> <partition>",
            });
        }
        let id = if let Some(&id) = names.get(toks[1]) {
            id
        } else if let Ok(idx) = toks[1].parse::<usize>() {
            if idx >= problem.n() {
                return Err(ParseError::UnknownComponent {
                    line,
                    name: toks[1].to_string(),
                });
            }
            ComponentId::new(idx)
        } else {
            return Err(ParseError::UnknownComponent {
                line,
                name: toks[1].to_string(),
            });
        };
        let i = toks[2]
            .parse::<usize>()
            .ok()
            .filter(|&i| i < problem.m())
            .ok_or(ParseError::BadPartition {
                line,
                index: toks[2].parse().unwrap_or(usize::MAX),
            })?;
        parts[id.index()] = Some(i as u32);
    }
    let parts: Vec<u32> = parts
        .into_iter()
        .enumerate()
        .map(|(j, p)| match p {
            Some(p) => Ok(p),
            None if allow_partial => Ok(0),
            None => Err(ParseError::UnknownComponent {
                line: 0,
                name: format!("component {j} unassigned"),
            }),
        })
        .collect::<Result<_, _>>()?;
    Ok(Assignment::from_parts(parts)?)
}

/// Writes an assignment in the `assign` format, using component names.
pub fn write_assignment(problem: &Problem, assignment: &Assignment) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (j, i) in assignment.iter() {
        let name = problem
            .circuit()
            .component(j)
            .map(|c| c.name().to_string())
            .unwrap_or_else(|| j.index().to_string());
        let _ = writeln!(out, "assign {name} {}", i.index());
    }
    out
}

/// Convenience: the partition id a component holds in a parsed assignment.
pub fn partition_of(assignment: &Assignment, j: usize) -> PartitionId {
    assignment.partition_of(ComponentId::new(j))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluator;

    const SAMPLE: &str = "\
# a small system
qbp 1
scales 1 1
component alu 40
component cache 60
component bus 10
wires alu cache 5
wire cache bus 2     # directed
grid 2 2 80
timing alu cache 1
timing cache alu 1
";

    #[test]
    fn parses_the_sample() {
        let p = parse_problem(SAMPLE).expect("parses");
        assert_eq!(p.n(), 3);
        assert_eq!(p.m(), 4);
        assert_eq!(p.circuit().connection(ComponentId::new(0), ComponentId::new(1)), 5);
        assert_eq!(p.circuit().connection(ComponentId::new(1), ComponentId::new(2)), 2);
        assert_eq!(p.circuit().connection(ComponentId::new(2), ComponentId::new(1)), 0);
        assert_eq!(p.timing().len(), 2);
        assert_eq!(p.topology().capacity(PartitionId::new(3)), 80);
    }

    #[test]
    fn round_trips() {
        let p = parse_problem(SAMPLE).expect("parses");
        let text = write_problem(&p);
        let q = parse_problem(&text).expect("round trip parses");
        assert_eq!(p, q);
    }

    #[test]
    fn streamed_reader_matches_in_memory_parse() {
        let p = parse_problem(SAMPLE).expect("parses");
        let streamed = read_problem(std::io::Cursor::new(SAMPLE)).expect("streams");
        assert_eq!(p, streamed);
        // Read failures surface as ParseError::Io, not a panic.
        struct Broken;
        impl std::io::Read for Broken {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("wire unplugged"))
            }
        }
        let err = read_problem(std::io::BufReader::new(Broken)).unwrap_err();
        assert!(matches!(err, ParseError::Io { .. }));
    }

    #[test]
    fn forward_timing_references_still_resolve() {
        // `timing` before the components are declared defers by name.
        let text = "\
qbp 1
component a 1
timing a b 2
component b 1
wire a b 3
grid 1 2 5
";
        let p = parse_problem(text).expect("parses");
        assert_eq!(p.timing().len(), 1);
        let streamed = read_problem(std::io::Cursor::new(text)).expect("streams");
        assert_eq!(p, streamed);
    }

    #[test]
    fn explicit_matrices_round_trip() {
        let text = "\
qbp 1
component a 1
component b 2
wire a b 3
partitions 2
capacities 4 5
wirecost 0 1 7
wirecost 1 0 2
delay 0 1 9
delay 1 0 1
timing a b 9
linear 0 1 6
";
        let p = parse_problem(text).expect("parses");
        assert_eq!(p.topology().wire_cost()[(0, 1)], 7);
        assert_eq!(p.topology().delay()[(1, 0)], 1);
        assert_eq!(p.linear_cost().expect("has P")[(0, 1)], 6);
        let q = parse_problem(&write_problem(&p)).expect("round trip");
        assert_eq!(p, q);
    }

    #[test]
    fn header_required() {
        assert_eq!(
            parse_problem("component a 1\n"),
            Err(ParseError::BadHeader { line: 1 })
        );
        assert_eq!(
            parse_problem("# preamble\n\nqbp 2\n"),
            Err(ParseError::BadHeader { line: 3 })
        );
        // Empty input: no line to point at, `finish` reports line 0.
        assert_eq!(parse_problem(""), Err(ParseError::BadHeader { line: 0 }));
    }

    #[test]
    fn hostile_partition_counts_are_rejected_before_allocation() {
        // A dense m x m topology for these m values would be hundreds of
        // gigabytes; the parser must refuse without allocating.
        for text in [
            "qbp 1\ncomponent a 1\npartitions 99999999999\n",
            &format!("qbp 1\ncomponent a 1\npartitions {}\n", MAX_PARTITIONS + 1),
            "qbp 1\ncomponent a 1\ngrid 4000000000 4000000000 5\n",
            "qbp 1\ncomponent a 1\ngrid 100000 100000 5\n",
        ] {
            assert!(
                matches!(
                    parse_problem(text),
                    Err(ParseError::BadArguments { line: 3, .. })
                ),
                "input {text:?} must be rejected at line 3"
            );
        }
        // Ordinary counts still parse.
        let ok = "qbp 1\ncomponent a 1\npartitions 8\ncapacity 0 1\n";
        assert!(parse_problem(ok).is_ok());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "qbp 1\ncomponent a 1\nfrobnicate x\n";
        match parse_problem(text) {
            Err(ParseError::UnknownDirective { line, directive }) => {
                assert_eq!(line, 3);
                assert_eq!(directive, "frobnicate");
            }
            other => panic!("expected UnknownDirective, got {other:?}"),
        }
        let text = "qbp 1\ncomponent a 1\nwire a ghost 2\ngrid 1 2 5\n";
        assert!(matches!(
            parse_problem(text),
            Err(ParseError::UnknownComponent { line: 3, .. })
        ));
    }

    #[test]
    fn capacity_before_partitions_is_out_of_order() {
        let text = "qbp 1\ncomponent a 1\ncapacity 0 5\n";
        assert!(matches!(
            parse_problem(text),
            Err(ParseError::OutOfOrder { line: 3, .. })
        ));
    }

    #[test]
    fn indices_work_as_component_references() {
        let text = "qbp 1\ncomponent a 1\ncomponent b 1\nwire 0 1 4\ngrid 1 2 5\n";
        let p = parse_problem(text).expect("parses");
        assert_eq!(p.circuit().connection(ComponentId::new(0), ComponentId::new(1)), 4);
    }

    #[test]
    fn assignment_round_trip_and_validation() {
        let p = parse_problem(SAMPLE).expect("parses");
        let asg = Assignment::from_parts(vec![0, 1, 3]).expect("3 components");
        let text = write_assignment(&p, &asg);
        let back = parse_assignment(&text, &p, false).expect("parses");
        assert_eq!(back, asg);
        // Partial assignment rejected without the flag, accepted with it.
        let partial = "assign alu 2\n";
        assert!(parse_assignment(partial, &p, false).is_err());
        let relaxed = parse_assignment(partial, &p, true).expect("partial ok");
        assert_eq!(relaxed.partition_of(ComponentId::new(0)).index(), 2);
        assert_eq!(relaxed.partition_of(ComponentId::new(1)).index(), 0);
    }

    #[test]
    fn assignment_rejects_bad_partition() {
        let p = parse_problem(SAMPLE).expect("parses");
        assert!(matches!(
            parse_assignment("assign alu 99\n", &p, true),
            Err(ParseError::BadPartition { .. })
        ));
        assert!(matches!(
            parse_assignment("assign ghost 1\n", &p, true),
            Err(ParseError::UnknownComponent { .. })
        ));
    }

    #[test]
    fn parsed_problem_is_usable() {
        let p = parse_problem(SAMPLE).expect("parses");
        // alu@0 and cache@1 are adjacent (timing limit 1 satisfied); the
        // alu+cache pair would exceed capacity 80 if co-located.
        let asg = Assignment::from_parts(vec![0, 1, 1]).expect("3 components");
        let eval = Evaluator::new(&p);
        // 5 symmetric wires at distance 1 (counted per direction) + the
        // directed cache→bus wires at distance 0.
        assert_eq!(eval.cost(&asg), 2 * 5);
        assert!(crate::check_feasibility(&p, &asg).is_feasible());
    }

    #[test]
    fn semantic_validation_propagates() {
        // Total size exceeds total capacity.
        let text = "qbp 1\ncomponent a 100\ngrid 1 2 5\n";
        assert!(matches!(
            parse_problem(text),
            Err(ParseError::Invalid(crate::Error::CapacityImpossible { .. }))
        ));
    }
}
