//! Index newtypes: components, partitions and the flattened pair index.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a circuit component (`j ∈ J` in the paper).
///
/// Component ids are dense indices handed out by
/// [`Circuit::add_component`](crate::Circuit::add_component) in insertion
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// Creates a component id from a raw index.
    ///
    /// Ids are only meaningful relative to the [`Circuit`](crate::Circuit)
    /// they index into; out-of-range ids are rejected by the APIs that
    /// consume them.
    pub fn new(index: usize) -> Self {
        ComponentId(index as u32)
    }

    /// Returns the dense index of this component.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<ComponentId> for usize {
    fn from(id: ComponentId) -> usize {
        id.index()
    }
}

/// Index of a partition (`i ∈ I` in the paper): an MCM chip slot, an FPGA,
/// a TCM site, ...
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PartitionId(pub(crate) u32);

impl PartitionId {
    /// Creates a partition id from a raw index.
    pub fn new(index: usize) -> Self {
        PartitionId(index as u32)
    }

    /// Returns the dense index of this partition.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<PartitionId> for usize {
    fn from(id: PartitionId) -> usize {
        id.index()
    }
}

/// Flattened index of a candidate assignment `(partition i, component j)`.
///
/// The paper flattens the binary solution matrix `[x_{ij}]` column-wise into
/// a vector `y` of length `M·N` with `r = i + (j-1)·M` (1-based). We use the
/// 0-based equivalent `r = i + j·M`. A `PairIndex` is the coordinate of one
/// entry of `y`, and equivalently one row/column of the flattened cost matrix
/// `Q̂`.
///
/// ```
/// use qbp_core::{PairIndex, PartitionId, ComponentId};
///
/// let m = 4;
/// let r = PairIndex::from_parts(PartitionId::new(2), ComponentId::new(1), m);
/// assert_eq!(r.index(), 6);
/// assert_eq!(r.parts(m), (PartitionId::new(2), ComponentId::new(1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PairIndex(pub(crate) u32);

impl PairIndex {
    /// Creates a pair index from a raw flattened index.
    pub fn new(index: usize) -> Self {
        PairIndex(index as u32)
    }

    /// Flattens `(partition, component)` into `r = i + j·M`.
    pub fn from_parts(partition: PartitionId, component: ComponentId, m: usize) -> Self {
        PairIndex(partition.0 + component.0 * m as u32)
    }

    /// Returns the flattened index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Splits the flattened index back into `(partition, component)` for a
    /// problem with `m` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn parts(self, m: usize) -> (PartitionId, ComponentId) {
        assert!(m > 0, "a problem must have at least one partition");
        let m = m as u32;
        (PartitionId(self.0 % m), ComponentId(self.0 / m))
    }
}

impl fmt::Display for PairIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<PairIndex> for usize {
    fn from(r: PairIndex) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_roundtrip_is_bijective() {
        let m = 7;
        let n = 11;
        let mut seen = std::collections::HashSet::new();
        for j in 0..n {
            for i in 0..m {
                let r = PairIndex::from_parts(PartitionId::new(i), ComponentId::new(j), m);
                assert!(seen.insert(r.index()), "duplicate flattened index");
                assert_eq!(r.parts(m), (PartitionId::new(i), ComponentId::new(j)));
            }
        }
        assert_eq!(seen.len(), m * n);
        assert_eq!(*seen.iter().max().unwrap(), m * n - 1);
    }

    #[test]
    fn pair_index_matches_paper_column_major_layout() {
        // Paper: r = i + (j-1)·M for 1-based i, j; the first M entries of y
        // are the candidate assignments of component 0.
        let m = 4;
        assert_eq!(
            PairIndex::from_parts(PartitionId::new(0), ComponentId::new(0), m).index(),
            0
        );
        assert_eq!(
            PairIndex::from_parts(PartitionId::new(3), ComponentId::new(0), m).index(),
            3
        );
        assert_eq!(
            PairIndex::from_parts(PartitionId::new(0), ComponentId::new(1), m).index(),
            4
        );
    }

    #[test]
    fn display_forms_are_nonempty_and_distinct() {
        assert_eq!(ComponentId::new(3).to_string(), "c3");
        assert_eq!(PartitionId::new(3).to_string(), "p3");
        assert_eq!(PairIndex::new(3).to_string(), "r3");
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn parts_panics_on_zero_partitions() {
        let _ = PairIndex::new(5).parts(0);
    }
}
