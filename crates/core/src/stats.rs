//! Descriptive statistics over circuits and assignments — the numbers a
//! partitioning practitioner looks at first: connectivity structure, size
//! distribution, per-partition utilization, wire-span histogram, and
//! timing-slack margins.

use crate::{Assignment, Circuit, ComponentId, Cost, Delay, PartitionId, Problem, Size};
use serde::{Deserialize, Serialize};

/// Summary statistics of a circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Number of components.
    pub components: usize,
    /// Number of distinct directed connected pairs.
    pub directed_pairs: usize,
    /// Sum of all `A` entries (symmetric wires count twice).
    pub total_wire_weight: Cost,
    /// Total component size.
    pub total_size: Size,
    /// Smallest component size.
    pub min_size: Size,
    /// Largest component size.
    pub max_size: Size,
    /// Mean out-degree (distinct out-neighbors).
    pub mean_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Number of isolated components (no connections either way).
    pub isolated: usize,
}

impl CircuitStats {
    /// Computes statistics for a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let sizes: Vec<Size> = (0..n).map(|j| circuit.size(ComponentId::new(j))).collect();
        let degrees: Vec<usize> = (0..n)
            .map(|j| circuit.out_degree(ComponentId::new(j)))
            .collect();
        let isolated = (0..n)
            .filter(|&j| {
                circuit.out_connections(ComponentId::new(j)).next().is_none()
                    && circuit.in_connections(ComponentId::new(j)).next().is_none()
            })
            .count();
        CircuitStats {
            components: n,
            directed_pairs: circuit.directed_edge_count(),
            total_wire_weight: circuit.total_wire_weight(),
            total_size: sizes.iter().sum(),
            min_size: sizes.iter().copied().min().unwrap_or(0),
            max_size: sizes.iter().copied().max().unwrap_or(0),
            mean_out_degree: if n == 0 {
                0.0
            } else {
                degrees.iter().sum::<usize>() as f64 / n as f64
            },
            max_out_degree: degrees.iter().copied().max().unwrap_or(0),
            isolated,
        }
    }

    /// Size spread `max/min` — the paper's circuits span "about 2 orders of
    /// magnitude". Returns 0.0 for empty circuits.
    pub fn size_spread(&self) -> f64 {
        if self.min_size == 0 {
            0.0
        } else {
            self.max_size as f64 / self.min_size as f64
        }
    }
}

/// Summary statistics of an assignment against its problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentStats {
    /// Per-partition used size, in partition order.
    pub used: Vec<Size>,
    /// Per-partition utilization `used / capacity` (0 when capacity is 0).
    pub utilization: Vec<f64>,
    /// Highest utilization across partitions.
    pub peak_utilization: f64,
    /// Histogram of wire spans: `span_histogram[k]` = total wire weight
    /// routed at `B`-cost `k` (index capped at the matrix maximum).
    pub span_histogram: Vec<Cost>,
    /// Wires entirely inside one partition (span 0), as a fraction of the
    /// total weight.
    pub internal_fraction: f64,
    /// Smallest margin `D_C − D` over all timing constraints
    /// (negative ⇒ violated); `None` when there are no constraints.
    pub worst_timing_margin: Option<Delay>,
}

impl AssignmentStats {
    /// Computes statistics for an assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment does not match the problem's dimensions.
    pub fn of(problem: &Problem, assignment: &Assignment) -> Self {
        let m = problem.m();
        let mut used = vec![0; m];
        for j in 0..problem.n() {
            used[assignment.part_index(j)] += problem.circuit().size(ComponentId::new(j));
        }
        let utilization: Vec<f64> = (0..m)
            .map(|i| {
                let cap = problem.topology().capacity(PartitionId::new(i));
                if cap == 0 {
                    0.0
                } else {
                    used[i] as f64 / cap as f64
                }
            })
            .collect();
        let b = problem.topology().wire_cost();
        let max_b = b.max_entry().max(0) as usize;
        let mut span_histogram = vec![0; max_b + 1];
        let mut total_weight = 0;
        for (j1, j2, w) in problem.circuit().edges() {
            let span = b[(
                assignment.part_index(j1.index()),
                assignment.part_index(j2.index()),
            )]
            .clamp(0, max_b as Cost) as usize;
            span_histogram[span] += w;
            total_weight += w;
        }
        let internal_fraction = if total_weight == 0 {
            1.0
        } else {
            span_histogram[0] as f64 / total_weight as f64
        };
        let d = problem.topology().delay();
        let worst_timing_margin = problem
            .timing()
            .iter()
            .map(|(a, c, limit)| {
                limit
                    - d[(
                        assignment.part_index(a.index()),
                        assignment.part_index(c.index()),
                    )]
            })
            .min();
        AssignmentStats {
            peak_utilization: utilization.iter().copied().fold(0.0, f64::max),
            used,
            utilization,
            span_histogram,
            internal_fraction,
            worst_timing_margin,
        }
    }

    /// `true` when capacity and timing margins are all non-negative — a
    /// cheap consistency cross-check against
    /// [`check_feasibility`](crate::check_feasibility).
    pub fn looks_feasible(&self) -> bool {
        self.peak_utilization <= 1.0 && self.worst_timing_margin.is_none_or(|margin| margin >= 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_feasibility, PartitionTopology, ProblemBuilder, TimingConstraints};

    fn setup() -> (Problem, Assignment) {
        let mut c = Circuit::new();
        let a = c.add_component("a", 3);
        let b = c.add_component("b", 4);
        let d = c.add_component("c", 5);
        let _lone = c.add_component("lone", 1);
        c.add_wires(a, b, 5).unwrap();
        c.add_wires(b, d, 2).unwrap();
        let mut tc = TimingConstraints::new(4);
        tc.add_symmetric(a, b, 1).unwrap();
        let p = ProblemBuilder::new(c, PartitionTopology::grid(2, 2, 8).unwrap())
            .timing(tc)
            .build()
            .unwrap();
        let asg = Assignment::from_parts(vec![0, 1, 3, 0]).unwrap();
        (p, asg)
    }

    #[test]
    fn circuit_stats_basics() {
        let (p, _) = setup();
        let s = CircuitStats::of(p.circuit());
        assert_eq!(s.components, 4);
        assert_eq!(s.directed_pairs, 4);
        assert_eq!(s.total_wire_weight, 14);
        assert_eq!(s.total_size, 13);
        assert_eq!((s.min_size, s.max_size), (1, 5));
        assert_eq!(s.isolated, 1);
        assert_eq!(s.max_out_degree, 2);
        assert!((s.size_spread() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn assignment_stats_usage_and_spans() {
        let (p, asg) = setup();
        let s = AssignmentStats::of(&p, &asg);
        assert_eq!(s.used, vec![4, 4, 0, 5]);
        assert!((s.peak_utilization - 5.0 / 8.0).abs() < 1e-9);
        // a–b at distance 1 (weight 10 over both directions), b–c at
        // distance 1 (weight 4): all weight at span 1.
        assert_eq!(s.span_histogram, vec![0, 14, 0]);
        assert!((s.internal_fraction - 0.0).abs() < 1e-9);
        assert_eq!(s.worst_timing_margin, Some(0));
        assert!(s.looks_feasible());
    }

    #[test]
    fn looks_feasible_agrees_with_full_check() {
        let (p, _) = setup();
        for parts in [[0u32, 1, 3, 0], [0, 3, 3, 0], [0, 0, 0, 0], [1, 1, 2, 3]] {
            let asg = Assignment::from_parts(parts.to_vec()).unwrap();
            let s = AssignmentStats::of(&p, &asg);
            assert_eq!(
                s.looks_feasible(),
                check_feasibility(&p, &asg).is_feasible(),
                "parts {parts:?}"
            );
        }
    }

    #[test]
    fn no_constraints_gives_no_margin() {
        let (p, asg) = setup();
        let relaxed = p.without_timing();
        let s = AssignmentStats::of(&relaxed, &asg);
        assert_eq!(s.worst_timing_margin, None);
        assert!(s.looks_feasible());
    }

    #[test]
    fn internal_fraction_counts_colocated_weight() {
        let (p, _) = setup();
        let together = Assignment::from_parts(vec![0, 0, 1, 1]).unwrap();
        let s = AssignmentStats::of(&p, &together);
        // a–b internal (10 of 14); b–c crosses.
        assert!((s.internal_fraction - 10.0 / 14.0).abs() < 1e-9);
    }
}
