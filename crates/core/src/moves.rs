//! Deterministic speculative move batches for greedy interchange sweeps.
//!
//! The serial FM/KL-style sweep is a loop over a max-heap: pop the best
//! candidate, recompute its gain against the current state (heap entries go
//! stale as moves commit), and either apply it or push it back. That loop is
//! inherently sequential — each pop depends on every commit before it — but
//! the expensive part, *gain revalidation*, is a pure function of a frozen
//! state snapshot. This module batches the loop:
//!
//! 1. **Prefetch**: pop up to [`BatchQueue::prefetch`]`(limit)` entries from
//!    the heap, in pop order, into a buffer.
//! 2. **Speculate**: revalidate all buffered entries concurrently against
//!    the frozen pre-batch state ([`BatchQueue::evaluate`]).
//! 3. **Commit (serial)**: walk the buffer in order, replaying the serial
//!    loop's decisions exactly. A speculative gain is *valid* iff none of
//!    the entry's dependencies were touched since the prefetch (tracked by a
//!    [`TouchLog`]); a touched entry is revalidated serially, which is
//!    exactly what the serial loop would have computed. If a commit pushes a
//!    new heap entry that strictly beats the next buffered one, the batch
//!    aborts: the remainder is pushed back ([`BatchQueue::requeue_from`])
//!    and a fresh round starts — again matching the serial pop order.
//!
//! Under that discipline the batched sweep consumes entries in exactly the
//! serial pop order and applies exactly the serial decisions, so the result
//! (and the emitted move/profile event stream) is **bit-identical to the
//! serial sweep for every thread count and every batch size**. Ties need no
//! special care: heap entries are full tuples, so equal entries are
//! interchangeable copies.
//!
//! The helpers are generic over the heap entry type; the GFM/GKL baselines
//! instantiate them with their `(GainKey, u32, u32)` entries.

use std::collections::BinaryHeap;

/// Default number of heap entries prefetched per speculative round. Constant
/// (never derived from the thread count) so the consumed-entry sequence is
/// trivially identical for every thread budget; correctness does not depend
/// on the value, only the speculation hit rate does.
pub const SPECULATIVE_BATCH: usize = 64;

/// Epoch-stamped dirty set: tracks which components were touched (moved, or
/// adjacent to a move) since the last [`begin_round`](TouchLog::begin_round).
/// Used by the commit phase to decide whether a speculative gain computed
/// against the frozen pre-round state is still exact.
#[derive(Debug, Clone, Default)]
pub struct TouchLog {
    stamp: Vec<u64>,
    epoch: u64,
}

impl TouchLog {
    /// A log for `n` components, all untouched.
    pub fn new(n: usize) -> Self {
        TouchLog {
            stamp: vec![0; n],
            epoch: 1,
        }
    }

    /// Resets the log for `n` components (reusing the allocation).
    pub fn reset(&mut self, n: usize) {
        self.stamp.clear();
        self.stamp.resize(n, 0);
        self.epoch = 1;
    }

    /// Starts a new round: everything counts as untouched again.
    pub fn begin_round(&mut self) {
        self.epoch += 1;
    }

    /// Marks component `j` touched in the current round.
    #[inline]
    pub fn touch(&mut self, j: usize) {
        self.stamp[j] = self.epoch;
    }

    /// Whether component `j` was touched since the current round began.
    #[inline]
    pub fn touched(&self, j: usize) -> bool {
        self.stamp[j] == self.epoch
    }
}

/// Reusable prefetch buffer for one speculative round over a max-heap.
#[derive(Debug, Clone)]
pub struct BatchQueue<E> {
    buf: Vec<E>,
}

impl<E> Default for BatchQueue<E> {
    fn default() -> Self {
        BatchQueue { buf: Vec::new() }
    }
}

impl<E: Ord + Copy> BatchQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        BatchQueue { buf: Vec::new() }
    }

    /// Pops up to `limit` entries from `heap` (in pop order, i.e. descending)
    /// into the buffer, replacing any previous contents. Returns the number
    /// prefetched.
    pub fn prefetch(&mut self, heap: &mut BinaryHeap<E>, limit: usize) -> usize {
        self.buf.clear();
        while self.buf.len() < limit {
            match heap.pop() {
                Some(e) => self.buf.push(e),
                None => break,
            }
        }
        self.buf.len()
    }

    /// The prefetched entries, best first.
    pub fn entries(&self) -> &[E] {
        &self.buf
    }

    /// Revalidates every buffered entry concurrently with `f`, a pure
    /// function of the entry and the frozen pre-round state. Results come
    /// back in buffer order; the second element is the number of worker
    /// chunks used (`1` = the serial loop ran).
    pub fn evaluate<R, F>(&self, threads: usize, f: F) -> (Vec<R>, usize)
    where
        R: Send,
        E: Sync,
        F: Fn(&E) -> R + Sync,
    {
        let rows = self.buf.len();
        let tasks = crate::par::workers_for(threads, rows);
        let out = crate::par::map_collect(threads, rows, |i| f(&self.buf[i]));
        (out, tasks)
    }

    /// Pushes entries `from..` back into the heap (the abort path: a commit
    /// produced a better candidate than the rest of the batch).
    pub fn requeue_from(&mut self, heap: &mut BinaryHeap<E>, from: usize) {
        for &e in &self.buf[from..] {
            heap.push(e);
        }
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_log_rounds_are_independent() {
        let mut log = TouchLog::new(4);
        log.touch(1);
        assert!(log.touched(1));
        assert!(!log.touched(0));
        log.begin_round();
        assert!(!log.touched(1));
        log.touch(3);
        assert!(log.touched(3));
        log.reset(2);
        assert!(!log.touched(0) && !log.touched(1));
    }

    #[test]
    fn prefetch_preserves_pop_order_and_requeue_restores() {
        let mut heap: BinaryHeap<(i64, u32)> = [(5, 0), (9, 1), (1, 2), (7, 3)].into();
        let mut q = BatchQueue::new();
        assert_eq!(q.prefetch(&mut heap, 3), 3);
        assert_eq!(q.entries(), &[(9, 1), (7, 3), (5, 0)]);
        assert_eq!(heap.len(), 1);
        // Abort after consuming the first entry: the rest goes back.
        q.requeue_from(&mut heap, 1);
        assert_eq!(heap.len(), 3);
        assert_eq!(q.prefetch(&mut heap, 10), 3);
        assert_eq!(q.entries(), &[(7, 3), (5, 0), (1, 2)]);
        assert_eq!(q.prefetch(&mut heap, 10), 0);
    }

    #[test]
    fn evaluate_is_order_preserving_for_any_thread_count() {
        let mut heap: BinaryHeap<(i64, u32)> = (0..40).map(|i| (i as i64, i)).collect();
        let mut q = BatchQueue::new();
        q.prefetch(&mut heap, 40);
        let expect: Vec<i64> = q.entries().iter().map(|&(g, _)| g * 3).collect();
        for threads in [1usize, 2, 4, 8] {
            let (got, tasks) = q.evaluate(threads, |&(g, _)| g * 3);
            assert_eq!(got, expect, "threads={threads}");
            assert!(tasks >= 1 && tasks <= threads);
        }
    }
}
