//! The fixed partition topology: capacities, the inter-partition wire-cost
//! matrix `B`, and the inter-partition delay matrix `D`.

use crate::{Cost, Delay, DenseMatrix, Error, PartitionId, Size};
use serde::{Deserialize, Serialize};

/// A fixed partition topology (the paper's "Descriptions of Partitions").
///
/// * `capacities[i]` is `c_i`, the silicon area partition `i` provides;
/// * `wire_cost` is the `M×M` matrix `B`, the cost of routing one wire from
///   partition `i1` to partition `i2`;
/// * `delay` is the `M×M` matrix `D`, the routing delay from `i1` to `i2`.
///
/// The paper emphasizes that **no relationship between `B` and `D` is
/// assumed**; [`PartitionTopology::grid`] happens to use the Manhattan
/// distance for both, which is the configuration used in the paper's worked
/// example and evaluation.
///
/// ```
/// use qbp_core::PartitionTopology;
///
/// # fn main() -> Result<(), qbp_core::Error> {
/// // The paper's 2×2 example array: adjacent partitions distance 1 apart.
/// let t = PartitionTopology::grid(2, 2, 100)?;
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.wire_cost()[(0, 3)], 2); // diagonal corners
/// assert_eq!(t.delay()[(0, 1)], 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionTopology {
    capacities: Vec<Size>,
    wire_cost: DenseMatrix<Cost>,
    delay: DenseMatrix<Delay>,
}

impl PartitionTopology {
    /// Creates a topology from explicit capacities and `B`/`D` matrices.
    ///
    /// # Errors
    ///
    /// Returns an error when there are no partitions, when either matrix is
    /// not `M×M`, or when any cost or delay entry is negative.
    pub fn new(
        capacities: Vec<Size>,
        wire_cost: DenseMatrix<Cost>,
        delay: DenseMatrix<Delay>,
    ) -> Result<Self, Error> {
        let m = capacities.len();
        if m == 0 {
            return Err(Error::InvalidTopology("no partitions".into()));
        }
        for (mat, name) in [(&wire_cost, "wire cost matrix B"), (&delay, "delay matrix D")] {
            if mat.rows() != m || mat.cols() != m {
                return Err(Error::DimensionMismatch {
                    what: name,
                    expected: (m, m),
                    found: (mat.rows(), mat.cols()),
                });
            }
        }
        if let Some(&v) = wire_cost.iter().find(|&&v| v < 0) {
            return Err(Error::NegativeValue {
                what: "wire cost",
                value: v,
            });
        }
        if let Some(&v) = delay.iter().find(|&&v| v < 0) {
            return Err(Error::NegativeValue {
                what: "routing delay",
                value: v,
            });
        }
        Ok(PartitionTopology {
            capacities,
            wire_cost,
            delay,
        })
    }

    /// Creates a `rows × cols` grid of partitions, all with capacity
    /// `capacity`, where both `B` and `D` are the Manhattan distance between
    /// grid positions (adjacent partitions distance 1 apart).
    ///
    /// Partition `i` sits at `(i / cols, i % cols)`. This matches the paper's
    /// worked example (2×2) and evaluation setup (4×4, sixteen partitions).
    ///
    /// # Errors
    ///
    /// Returns an error when `rows == 0` or `cols == 0`.
    pub fn grid(rows: usize, cols: usize, capacity: Size) -> Result<Self, Error> {
        if rows == 0 || cols == 0 {
            return Err(Error::InvalidTopology(format!(
                "grid dimensions {rows}x{cols} must be positive"
            )));
        }
        let m = rows * cols;
        let manhattan = |a: usize, b: usize| -> i64 {
            let (ra, ca) = ((a / cols) as i64, (a % cols) as i64);
            let (rb, cb) = ((b / cols) as i64, (b % cols) as i64);
            (ra - rb).abs() + (ca - cb).abs()
        };
        let mat = DenseMatrix::from_fn(m, m, manhattan);
        PartitionTopology::new(vec![capacity; m], mat.clone(), mat)
    }

    /// Creates a `rows × cols` grid like [`PartitionTopology::grid`] but
    /// with the **quadratic** wire-length metric the paper mentions among
    /// the supported cost models (§2.1): `B` is the *squared* Manhattan
    /// distance. `D` stays the plain Manhattan distance — delay scales
    /// linearly with routing length even when the optimizer penalizes long
    /// wires quadratically.
    ///
    /// # Errors
    ///
    /// Returns an error when `rows == 0` or `cols == 0`.
    pub fn grid_quadratic(rows: usize, cols: usize, capacity: Size) -> Result<Self, Error> {
        let linear = PartitionTopology::grid(rows, cols, capacity)?;
        let m = linear.len();
        let b = DenseMatrix::from_fn(m, m, |a, c| {
            let d = linear.delay()[(a, c)];
            d * d
        });
        PartitionTopology::new(vec![capacity; m], b, linear.delay.clone())
    }

    /// Creates `m` partitions with uniform capacity where every distinct
    /// partition pair has wire cost 1 and delay 1 (and 0 on the diagonal).
    ///
    /// With this `B`, the quadratic objective term counts the total number of
    /// wire crossings — the classic min-cut metric, appropriate for
    /// multi-FPGA partitioning.
    ///
    /// # Errors
    ///
    /// Returns an error when `m == 0`.
    pub fn uniform(m: usize, capacity: Size) -> Result<Self, Error> {
        if m == 0 {
            return Err(Error::InvalidTopology("no partitions".into()));
        }
        let mat = DenseMatrix::from_fn(m, m, |a, b| i64::from(a != b));
        PartitionTopology::new(vec![capacity; m], mat.clone(), mat)
    }

    /// Replaces all capacities.
    ///
    /// # Errors
    ///
    /// Returns an error if the length differs from the current `M`.
    pub fn with_capacities(mut self, capacities: Vec<Size>) -> Result<Self, Error> {
        if capacities.len() != self.len() {
            return Err(Error::DimensionMismatch {
                what: "capacity vector",
                expected: (self.len(), 1),
                found: (capacities.len(), 1),
            });
        }
        self.capacities = capacities;
        Ok(self)
    }

    /// Replaces the delay matrix `D` (e.g. to use a delay model unrelated to
    /// the wire-cost model, which the formulation explicitly allows).
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is not `M×M` or has negative entries.
    pub fn with_delay(self, delay: DenseMatrix<Delay>) -> Result<Self, Error> {
        PartitionTopology::new(self.capacities, self.wire_cost, delay)
    }

    /// Replaces the wire-cost matrix `B`.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is not `M×M` or has negative entries.
    pub fn with_wire_cost(self, wire_cost: DenseMatrix<Cost>) -> Result<Self, Error> {
        PartitionTopology::new(self.capacities, wire_cost, self.delay)
    }

    /// Returns a copy with `B` set to all zeros.
    ///
    /// The paper uses this to bootstrap: "the fastest way to obtain an
    /// initial feasible solution is to use the QBP algorithm with matrix `B`
    /// set to all zeros".
    pub fn zero_wire_cost(&self) -> Self {
        PartitionTopology {
            capacities: self.capacities.clone(),
            wire_cost: DenseMatrix::filled(self.len(), self.len(), 0),
            delay: self.delay.clone(),
        }
    }

    /// Number of partitions, `M` in the paper.
    pub fn len(&self) -> usize {
        self.capacities.len()
    }

    /// Returns `true` if the topology has no partitions (never true for a
    /// successfully constructed topology).
    pub fn is_empty(&self) -> bool {
        self.capacities.is_empty()
    }

    /// Capacity `c_i` of a partition.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn capacity(&self, i: PartitionId) -> Size {
        self.capacities[i.index()]
    }

    /// All capacities in partition order.
    pub fn capacities(&self) -> &[Size] {
        &self.capacities
    }

    /// Sum of all capacities.
    pub fn total_capacity(&self) -> Size {
        self.capacities.iter().sum()
    }

    /// The wire-cost matrix `B`.
    pub fn wire_cost(&self) -> &DenseMatrix<Cost> {
        &self.wire_cost
    }

    /// The delay matrix `D`.
    pub fn delay(&self) -> &DenseMatrix<Delay> {
        &self.delay
    }

    /// Iterates over partition ids `0..M`.
    pub fn iter(&self) -> impl Iterator<Item = PartitionId> {
        (0..self.len()).map(PartitionId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_paper_2x2_example() {
        // Paper §3.3: B = D = [[0,1,1,2],[1,0,2,1],[1,2,0,1],[2,1,1,0]].
        let t = PartitionTopology::grid(2, 2, 10).unwrap();
        let expected = DenseMatrix::from_rows(vec![
            vec![0, 1, 1, 2],
            vec![1, 0, 2, 1],
            vec![1, 2, 0, 1],
            vec![2, 1, 1, 0],
        ])
        .unwrap();
        assert_eq!(*t.wire_cost(), expected);
        assert_eq!(*t.delay(), expected);
        assert_eq!(t.total_capacity(), 40);
    }

    #[test]
    fn grid_4x4_has_sixteen_partitions_max_distance_six() {
        let t = PartitionTopology::grid(4, 4, 100).unwrap();
        assert_eq!(t.len(), 16);
        assert_eq!(t.wire_cost().max_entry(), 6);
        // Symmetric with zero diagonal.
        for i in 0..16 {
            assert_eq!(t.wire_cost()[(i, i)], 0);
            for j in 0..16 {
                assert_eq!(t.wire_cost()[(i, j)], t.wire_cost()[(j, i)]);
            }
        }
    }

    #[test]
    fn quadratic_grid_squares_costs_keeps_delays() {
        let t = PartitionTopology::grid_quadratic(2, 2, 10).unwrap();
        assert_eq!(t.wire_cost()[(0, 1)], 1);
        assert_eq!(t.wire_cost()[(0, 3)], 4);
        assert_eq!(t.delay()[(0, 3)], 2);
        let lin = PartitionTopology::grid(2, 2, 10).unwrap();
        assert_eq!(*t.delay(), *lin.delay());
    }

    #[test]
    fn uniform_counts_crossings() {
        let t = PartitionTopology::uniform(3, 5).unwrap();
        assert_eq!(t.wire_cost()[(0, 0)], 0);
        assert_eq!(t.wire_cost()[(0, 2)], 1);
        assert_eq!(t.capacity(PartitionId::new(1)), 5);
    }

    #[test]
    fn zero_wire_cost_preserves_delay() {
        let t = PartitionTopology::grid(2, 2, 10).unwrap();
        let z = t.zero_wire_cost();
        assert_eq!(z.wire_cost().max_entry(), 0);
        assert_eq!(*z.delay(), *t.delay());
        assert_eq!(z.capacities(), t.capacities());
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(PartitionTopology::grid(0, 2, 1).is_err());
        assert!(PartitionTopology::uniform(0, 1).is_err());
        let b = DenseMatrix::filled(2, 3, 0i64);
        let d = DenseMatrix::filled(2, 2, 0i64);
        assert!(matches!(
            PartitionTopology::new(vec![1, 1], b, d),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn validation_rejects_negative_entries() {
        let mut b = DenseMatrix::filled(2, 2, 0i64);
        b[(0, 1)] = -1;
        let d = DenseMatrix::filled(2, 2, 0i64);
        assert!(matches!(
            PartitionTopology::new(vec![1, 1], b, d.clone()),
            Err(Error::NegativeValue { .. })
        ));
        let b = DenseMatrix::filled(2, 2, 0i64);
        let mut d2 = d;
        d2[(1, 0)] = -5;
        assert!(matches!(
            PartitionTopology::new(vec![1, 1], b, d2),
            Err(Error::NegativeValue { .. })
        ));
    }

    #[test]
    fn with_capacities_validates_length() {
        let t = PartitionTopology::grid(2, 2, 10).unwrap();
        assert!(t.clone().with_capacities(vec![1, 2, 3]).is_err());
        let t2 = t.with_capacities(vec![1, 2, 3, 4]).unwrap();
        assert_eq!(t2.total_capacity(), 10);
    }

    #[test]
    fn asymmetric_delay_is_allowed() {
        // "we don't assume any relationship between B and D".
        let b = DenseMatrix::from_fn(2, 2, |a, c| i64::from(a != c));
        let d = DenseMatrix::from_rows(vec![vec![0, 9], vec![1, 0]]).unwrap();
        let t = PartitionTopology::new(vec![1, 1], b, d).unwrap();
        assert_eq!(t.delay()[(0, 1)], 9);
        assert_eq!(t.delay()[(1, 0)], 1);
    }
}
