//! Multi-pin netlists and their lowering into the pairwise connection
//! matrix `A`.
//!
//! The paper's formulation takes `A` — pairwise wire counts — as given, but
//! real designs are *netlists*: each net connects a driver pin to several
//! sink pins. This module provides the netlist view and the standard
//! lowerings into pairwise form:
//!
//! * **Clique** — every unordered pin pair gets `2·weight/(k−1)` wires
//!   (scaled so the net's total pairwise weight is independent of its pin
//!   count `k`; the classic partitioning net model);
//! * **Star** — directed driver→sink wires, `weight` each (models fanout
//!   trees; asymmetric);
//! * **BoundedClique** — clique for small nets, star for nets above a pin
//!   threshold (what production tools do: cliques on 40-pin nets both
//!   distort the metric and blow up `E`).
//!
//! Weights are scaled by [`NET_WEIGHT_SCALE`] so the clique fractions stay
//! exact integers for pin counts up to 9 against the integer cost domain.

use crate::{Circuit, ComponentId, Cost, Error, Size};
use serde::{Deserialize, Serialize};

/// Fixed-point scale applied to every lowered wire weight, so fractional
/// clique shares (`2·w/(k−1)`) remain exact integers for small `k`
/// (divisible by 1..=8). Objectives computed on a lowered circuit are in
/// units of `wire·distance / NET_WEIGHT_SCALE`.
pub const NET_WEIGHT_SCALE: Cost = 840;

/// How a multi-pin net is lowered to pairwise connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum NetModel {
    /// Clique on all pins with per-pair weight `2·w/(k−1)` (symmetric).
    #[default]
    Clique,
    /// Driver→sink star, weight `w` per sink (directed).
    Star,
    /// Clique for nets with at most the given pin count, star beyond it.
    BoundedClique(
        /// Maximum pin count lowered as a clique.
        usize,
    ),
}

/// One net: a named driver-plus-sinks pin set with a weight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    name: String,
    driver: ComponentId,
    sinks: Vec<ComponentId>,
    weight: Cost,
}

impl Net {
    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The driving component.
    pub fn driver(&self) -> ComponentId {
        self.driver
    }

    /// The sink components.
    pub fn sinks(&self) -> &[ComponentId] {
        &self.sinks
    }

    /// The net's weight (criticality multiplier).
    pub fn weight(&self) -> Cost {
        self.weight
    }

    /// Total pin count (driver + sinks).
    pub fn pin_count(&self) -> usize {
        1 + self.sinks.len()
    }
}

/// A multi-pin netlist over named cells.
///
/// ```
/// use qbp_core::netlist::{Netlist, NetModel, NET_WEIGHT_SCALE};
///
/// # fn main() -> Result<(), qbp_core::Error> {
/// let mut netlist = Netlist::new();
/// let a = netlist.add_cell("alu", 10);
/// let b = netlist.add_cell("buf", 5);
/// let c = netlist.add_cell("cmp", 7);
/// netlist.add_net("result", a, &[b, c], 1)?;
///
/// let circuit = netlist.lower(NetModel::Clique)?;
/// // 3-pin net: each of the 3 unordered pairs carries 2·w/(k−1) = w.
/// assert_eq!(circuit.connection(a, b), NET_WEIGHT_SCALE);
/// assert_eq!(circuit.connection(b, c), NET_WEIGHT_SCALE);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Netlist {
    cells: Vec<(String, Size)>,
    nets: Vec<Net>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Adds a cell (component) and returns its id. Ids are shared with the
    /// lowered [`Circuit`].
    pub fn add_cell(&mut self, name: impl Into<String>, size: Size) -> ComponentId {
        let id = ComponentId::new(self.cells.len());
        self.cells.push((name.into(), size));
        id
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Iterates over the nets.
    pub fn nets(&self) -> impl Iterator<Item = &Net> {
        self.nets.iter()
    }

    /// Adds a net from `driver` to `sinks` with the given weight.
    ///
    /// # Errors
    ///
    /// Returns an error when any pin is out of range, a sink repeats or
    /// equals the driver, the sink list is empty, or the weight is not
    /// positive.
    pub fn add_net(
        &mut self,
        name: impl Into<String>,
        driver: ComponentId,
        sinks: &[ComponentId],
        weight: Cost,
    ) -> Result<(), Error> {
        let len = self.cells.len();
        for &pin in std::iter::once(&driver).chain(sinks) {
            if pin.index() >= len {
                return Err(Error::ComponentOutOfRange { id: pin, len });
            }
        }
        if sinks.is_empty() {
            return Err(Error::NegativeValue {
                what: "net sink count",
                value: 0,
            });
        }
        if weight <= 0 {
            return Err(Error::NegativeValue {
                what: "net weight",
                value: weight,
            });
        }
        let mut seen: Vec<ComponentId> = vec![driver];
        for &s in sinks {
            if seen.contains(&s) {
                return Err(Error::SelfLoop(s));
            }
            seen.push(s);
        }
        self.nets.push(Net {
            name: name.into(),
            driver,
            sinks: sinks.to_vec(),
            weight,
        });
        Ok(())
    }

    /// Lowers the netlist to a pairwise [`Circuit`] under the given model.
    /// Weights are scaled by [`NET_WEIGHT_SCALE`].
    ///
    /// # Errors
    ///
    /// Never fails for a validly constructed netlist; the signature matches
    /// the fallible connection API it drives.
    pub fn lower(&self, model: NetModel) -> Result<Circuit, Error> {
        let mut circuit = Circuit::with_capacity(self.cells.len());
        for (name, size) in &self.cells {
            circuit.add_component(name.clone(), *size);
        }
        for net in &self.nets {
            let k = net.pin_count();
            let as_clique = match model {
                NetModel::Clique => true,
                NetModel::Star => false,
                NetModel::BoundedClique(max_pins) => k <= max_pins,
            };
            if as_clique {
                // Per unordered pair: 2·w/(k−1), scaled. Σ over the k(k−1)/2
                // pairs (×2 directions) = w·k·SCALE: linear in pin count,
                // independent of the clique blow-up.
                let share = 2 * net.weight * NET_WEIGHT_SCALE / (k as Cost - 1);
                let pins: Vec<ComponentId> =
                    std::iter::once(net.driver).chain(net.sinks.iter().copied()).collect();
                for (x, &p) in pins.iter().enumerate() {
                    for &q in &pins[x + 1..] {
                        circuit.add_wires(p, q, share)?;
                    }
                }
            } else {
                for &s in &net.sinks {
                    circuit.add_connection(net.driver, s, net.weight * NET_WEIGHT_SCALE)?;
                }
            }
        }
        Ok(circuit)
    }

    /// Cut size of an assignment at the *net* level: total weight of nets
    /// whose pins span more than one partition. This is the metric FPGA
    /// flows actually care about (each cut net costs device I/O once, no
    /// matter how many pins cross).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the cell count.
    pub fn net_cut(&self, assignment: &crate::Assignment) -> Cost {
        self.nets
            .iter()
            .filter(|net| {
                let home = assignment.part_index(net.driver.index());
                net.sinks
                    .iter()
                    .any(|s| assignment.part_index(s.index()) != home)
            })
            .map(|net| net.weight)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assignment;

    fn three_cell_netlist() -> (Netlist, ComponentId, ComponentId, ComponentId) {
        let mut nl = Netlist::new();
        let a = nl.add_cell("a", 10);
        let b = nl.add_cell("b", 5);
        let c = nl.add_cell("c", 7);
        (nl, a, b, c)
    }

    #[test]
    fn clique_lowering_scales_by_pin_count() {
        let (mut nl, a, b, c) = three_cell_netlist();
        nl.add_net("n0", a, &[b, c], 1).unwrap();
        let circuit = nl.lower(NetModel::Clique).unwrap();
        // k = 3: share = 2·1·S/2 = S per unordered pair.
        assert_eq!(circuit.connection(a, b), NET_WEIGHT_SCALE);
        assert_eq!(circuit.connection(b, a), NET_WEIGHT_SCALE);
        assert_eq!(circuit.connection(a, c), NET_WEIGHT_SCALE);
        assert_eq!(circuit.connection(b, c), NET_WEIGHT_SCALE);
        // Total = w·k·S = 3S per direction... summed over directions: 6S.
        assert_eq!(circuit.total_wire_weight(), 6 * NET_WEIGHT_SCALE);
    }

    #[test]
    fn two_pin_net_is_one_full_wire() {
        let (mut nl, a, b, _) = three_cell_netlist();
        nl.add_net("w", a, &[b], 3).unwrap();
        let circuit = nl.lower(NetModel::Clique).unwrap();
        // k = 2: share = 2·3·S/1 = 6S... per unordered pair — which is the
        // single pair: weight 6S both directions.
        assert_eq!(circuit.connection(a, b), 6 * NET_WEIGHT_SCALE);
    }

    #[test]
    fn star_lowering_is_directed() {
        let (mut nl, a, b, c) = three_cell_netlist();
        nl.add_net("n0", a, &[b, c], 2).unwrap();
        let circuit = nl.lower(NetModel::Star).unwrap();
        assert_eq!(circuit.connection(a, b), 2 * NET_WEIGHT_SCALE);
        assert_eq!(circuit.connection(a, c), 2 * NET_WEIGHT_SCALE);
        assert_eq!(circuit.connection(b, a), 0);
        assert_eq!(circuit.connection(b, c), 0);
    }

    #[test]
    fn bounded_clique_switches_models() {
        let mut nl = Netlist::new();
        let cells: Vec<ComponentId> = (0..6).map(|k| nl.add_cell(format!("c{k}"), 1)).collect();
        nl.add_net("small", cells[0], &[cells[1], cells[2]], 1).unwrap(); // 3 pins
        nl.add_net("big", cells[0], &cells[1..], 1).unwrap(); // 6 pins
        let circuit = nl.lower(NetModel::BoundedClique(4)).unwrap();
        // The small net contributed symmetric weight between sinks 1 and 2;
        // the big net is a star and contributes nothing between sinks.
        assert!(circuit.connection(cells[1], cells[2]) > 0);
        assert_eq!(circuit.connection(cells[4], cells[5]), 0);
        // Star part: driver to far sinks.
        assert_eq!(circuit.connection(cells[0], cells[5]), NET_WEIGHT_SCALE);
    }

    #[test]
    fn validation_rejects_bad_nets() {
        let (mut nl, a, b, _) = three_cell_netlist();
        assert!(nl.add_net("dup", a, &[b, b], 1).is_err());
        assert!(nl.add_net("self", a, &[a], 1).is_err());
        assert!(nl.add_net("empty", a, &[], 1).is_err());
        assert!(nl.add_net("zero", a, &[b], 0).is_err());
        let ghost = ComponentId::new(9);
        assert!(nl.add_net("ghost", a, &[ghost], 1).is_err());
    }

    #[test]
    fn net_cut_counts_spanning_nets_once() {
        let (mut nl, a, b, c) = three_cell_netlist();
        nl.add_net("n0", a, &[b, c], 5).unwrap();
        nl.add_net("n1", b, &[c], 2).unwrap();
        // a alone; b and c together: n0 spans (5), n1 does not.
        let asg = Assignment::from_parts(vec![0, 1, 1]).unwrap();
        assert_eq!(nl.net_cut(&asg), 5);
        // All together: nothing cut.
        let together = Assignment::all_in_first(3);
        assert_eq!(nl.net_cut(&together), 0);
        // All apart: both cut.
        let apart = Assignment::from_parts(vec![0, 1, 2]).unwrap();
        assert_eq!(nl.net_cut(&apart), 7);
    }

    #[test]
    fn lowered_circuit_partitions_end_to_end() {
        use crate::{PartitionTopology, ProblemBuilder};
        let mut nl = Netlist::new();
        let cells: Vec<ComponentId> = (0..8).map(|k| nl.add_cell(format!("c{k}"), 2)).collect();
        for w in cells.windows(2) {
            nl.add_net(format!("n{}", w[0]), w[0], &[w[1]], 1).unwrap();
        }
        let circuit = nl.lower(NetModel::default()).unwrap();
        let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 6).unwrap())
            .build()
            .unwrap();
        assert_eq!(problem.n(), 8);
        assert!(problem.circuit().total_wire_weight() > 0);
    }
}
