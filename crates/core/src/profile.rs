//! Incremental per-partition neighbor-weight aggregates.
//!
//! [`PartitionProfile`] maintains, for each component `j` and partition `p`,
//! the aggregated neighbor weight `w[j][p] = Σ_{k ∈ N(j), A(k) = p} a[j][k]`
//! (separately for the out and in edge directions), updated in `O(deg(j))`
//! per committed move. The profile is the shared table behind the fast gain
//! kernels: QBP's η row evaluation
//! ([`QMatrix::eta_profiled`](crate::QMatrix::eta_profiled)), GFM's move
//! gains ([`Evaluator::move_delta_profiled`](crate::Evaluator)), and GKL's
//! swap gains ([`Evaluator::swap_delta_profiled`](crate::Evaluator)) all
//! become `O(M)` table lookups instead of `O(deg·M)` adjacency walks, with
//! bit-identical integer results (`Σ_k β·w_k·x = β·(Σ_k w_k)·x` exactly in
//! `i64`).
//!
//! # Structure-of-arrays layout
//!
//! Aggregate rows are stored flat with their stride padded from `M` up to
//! [`padded_partitions`]`(M)` — the next multiple of [`SIMD_LANES`] — and the
//! pad lanes pinned at zero. The hot reduce/axpy loops ([`dot_diff`],
//! [`dot_diff2`], [`axpy`]) run as explicitly 4-lane-unrolled chunks over
//! `&[i64; 4]` blocks, which stable Rust autovectorizes; zero pad lanes
//! contribute nothing, so results stay bit-identical to the scalar loops
//! (`i64` addition is exact and reassociation-safe). Plain profiles
//! additionally carry padded copies of the wire-cost matrix `B` (row-major
//! and transposed), turning the in-direction column walks `b[(p, t)]` of the
//! move/swap kernels into contiguous row dots.

use crate::qmatrix::NO_CLASS;
use crate::{Assignment, Cost, Problem, QMatrix};

/// Fold tag for records that always belong in the base aggregate
/// (unconstrained connections).
const TAG_ALWAYS: u16 = u16::MAX;

/// Fold tag for records that never belong in the base aggregate
/// (timing-constrained records past the limit-class cap).
const TAG_NEVER: u16 = u16::MAX - 1;

/// `fix_idx` sentinel for a column with no constrained-correction row.
const NO_FIX_ROW: u32 = u32::MAX;

/// Number of `i64` lanes the hot kernels unroll by (the stride of the
/// structure-of-arrays padding). Chosen to fill a 256-bit vector register
/// with `i64`s; stable-Rust autovectorization needs no wider hint.
pub const SIMD_LANES: usize = 4;

/// A partition count rounded up to the next [`SIMD_LANES`] multiple: the
/// stride of every padded aggregate row.
pub const fn padded_partitions(m: usize) -> usize {
    (m + SIMD_LANES - 1) & !(SIMD_LANES - 1)
}

/// `Σ_p w[p]·(x[p] − y[p])` over padded rows, 4 lanes at a time with no
/// branches and no tail (all slices have [`padded_partitions`] length).
/// Exact `i64`, so lane-split accumulation is bit-identical to the scalar
/// left-to-right sum.
#[inline]
pub(crate) fn dot_diff(w: &[Cost], x: &[Cost], y: &[Cost]) -> Cost {
    debug_assert_eq!(w.len() % SIMD_LANES, 0);
    debug_assert!(w.len() == x.len() && w.len() == y.len());
    let mut acc = [0 as Cost; SIMD_LANES];
    for ((wc, xc), yc) in w
        .chunks_exact(SIMD_LANES)
        .zip(x.chunks_exact(SIMD_LANES))
        .zip(y.chunks_exact(SIMD_LANES))
    {
        let wc: &[Cost; SIMD_LANES] = wc.try_into().expect("exact chunk");
        let xc: &[Cost; SIMD_LANES] = xc.try_into().expect("exact chunk");
        let yc: &[Cost; SIMD_LANES] = yc.try_into().expect("exact chunk");
        for l in 0..SIMD_LANES {
            acc[l] += wc[l] * (xc[l] - yc[l]);
        }
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// `Σ_p (w1[p] − w2[p])·(x[p] − y[p])` over padded rows — the fused
/// differenced pass of the swap kernel, same contract as [`dot_diff`].
#[inline]
pub(crate) fn dot_diff2(w1: &[Cost], w2: &[Cost], x: &[Cost], y: &[Cost]) -> Cost {
    debug_assert_eq!(w1.len() % SIMD_LANES, 0);
    debug_assert!(w1.len() == w2.len() && w1.len() == x.len() && w1.len() == y.len());
    let mut acc = [0 as Cost; SIMD_LANES];
    for (((wc1, wc2), xc), yc) in w1
        .chunks_exact(SIMD_LANES)
        .zip(w2.chunks_exact(SIMD_LANES))
        .zip(x.chunks_exact(SIMD_LANES))
        .zip(y.chunks_exact(SIMD_LANES))
    {
        let wc1: &[Cost; SIMD_LANES] = wc1.try_into().expect("exact chunk");
        let wc2: &[Cost; SIMD_LANES] = wc2.try_into().expect("exact chunk");
        let xc: &[Cost; SIMD_LANES] = xc.try_into().expect("exact chunk");
        let yc: &[Cost; SIMD_LANES] = yc.try_into().expect("exact chunk");
        for l in 0..SIMD_LANES {
            acc[l] += (wc1[l] - wc2[l]) * (xc[l] - yc[l]);
        }
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// `slot[i] += coeff·row[i]` for `i < slot.len()`, 4-lane-unrolled main
/// chunks plus a scalar tail (`row` may be longer than `slot`; extra entries
/// are ignored). Bit-identical to the scalar loop — every slot entry
/// receives exactly one exact-`i64` addition.
#[inline(always)]
pub(crate) fn axpy(slot: &mut [Cost], coeff: Cost, row: &[Cost]) {
    let main = slot.len() & !(SIMD_LANES - 1);
    let (s4, s_tail) = slot.split_at_mut(main);
    let (r4, r_tail) = row[..s4.len() + s_tail.len()].split_at(main);
    for (sc, rc) in s4
        .chunks_exact_mut(SIMD_LANES)
        .zip(r4.chunks_exact(SIMD_LANES))
    {
        let rc: &[Cost; SIMD_LANES] = rc.try_into().expect("exact chunk");
        sc[0] += coeff * rc[0];
        sc[1] += coeff * rc[1];
        sc[2] += coeff * rc[2];
        sc[3] += coeff * rc[3];
    }
    for (v, &bv) in s_tail.iter_mut().zip(r_tail) {
        *v += coeff * bv;
    }
}

/// `slot[i] += row[i]` for `i < slot.len()`, unrolled like [`axpy`].
#[inline(always)]
pub(crate) fn add_rows(slot: &mut [Cost], row: &[Cost]) {
    let main = slot.len() & !(SIMD_LANES - 1);
    let (s4, s_tail) = slot.split_at_mut(main);
    let (r4, r_tail) = row[..s4.len() + s_tail.len()].split_at(main);
    for (sc, rc) in s4
        .chunks_exact_mut(SIMD_LANES)
        .zip(r4.chunks_exact(SIMD_LANES))
    {
        let rc: &[Cost; SIMD_LANES] = rc.try_into().expect("exact chunk");
        sc[0] += rc[0];
        sc[1] += rc[1];
        sc[2] += rc[2];
        sc[3] += rc[3];
    }
    for (v, &bv) in s_tail.iter_mut().zip(r_tail) {
        *v += bv;
    }
}

/// Incremental per-partition aggregated neighbor weights, maintained with
/// `O(deg)` updates per committed move.
///
/// Two flavours share the struct:
///
/// * **Plain** ([`PartitionProfile::plain`]) — built from the circuit alone;
///   tracks both directions (`out_row` / `in_row`) over every connection.
///   Backs the profiled move/swap gain kernels of
///   [`Evaluator`](crate::Evaluator) used by the GFM/GKL baselines.
/// * **Embedded** ([`PartitionProfile::embedded`]) — built from a
///   [`QMatrix`]; tracks only the in direction, and a record's weight is
///   counted only while its limit class is *folded* for the source partition
///   (see the class tables inside `QMatrix`). Backs
///   [`QMatrix::eta_profiled`](crate::QMatrix::eta_profiled).
///
/// Aggregate rows live in a flat structure-of-arrays buffer with stride
/// [`PartitionProfile::padded_m`] (pad lanes pinned at zero); the public
/// `*_row` accessors return the logical `M`-length prefix, the `*_row_padded`
/// ones the full stride for the branchless 4-lane kernels.
///
/// The profile owns a copy of the adjacency it tracks, so
/// [`PartitionProfile::apply_move`] needs no access to the circuit or matrix
/// — and it never reads the assignment: a committed swap is simply two
/// `apply_move` calls (the patches are order-independent because a mover's
/// own rows aggregate its *partners'* positions, never its own).
#[derive(Debug, Clone)]
pub struct PartitionProfile {
    n: usize,
    m: usize,
    /// The padded row stride: `padded_partitions(m)`.
    m_pad: usize,
    /// `out_agg[j·M_pad + p] = Σ_{k ∈ out(j), A(k) = p} a[j][k]`. Empty for
    /// embedded profiles (η consumes only the in direction).
    out_agg: Vec<Cost>,
    /// `in_agg[j·M_pad + p] = Σ_{k ∈ in(j), A(k) = p} a[k][j]`, restricted to
    /// folded records for embedded profiles.
    in_agg: Vec<Cost>,
    /// Padded copy of the wire-cost matrix: `b_pad[p·M_pad + t] = b[p][t]`
    /// (plain profiles only; zero pad lanes).
    b_pad: Vec<Cost>,
    /// Padded transpose of the wire-cost matrix:
    /// `bt_pad[t·M_pad + p] = b[p][t]` — one contiguous row per *target*
    /// partition, turning in-direction column walks into row dots (plain
    /// profiles only).
    bt_pad: Vec<Cost>,
    /// Tracked out adjacency (CSR offsets / partner / weight / fold tag):
    /// walking row `j` patches the `in_agg` of `j`'s out-partners.
    out_off: Vec<u32>,
    out_other: Vec<u32>,
    out_w: Vec<Cost>,
    out_tag: Vec<u16>,
    /// Tracked in adjacency (plain profiles only): walking row `j` patches
    /// the `out_agg` of `j`'s in-partners.
    in_off: Vec<u32>,
    in_other: Vec<u32>,
    in_w: Vec<Cost>,
    /// `folded[c·M + p]` copied from the matrix's limit-class tables
    /// (embedded profiles only).
    folded: Vec<bool>,
    /// Packed-row index of the constrained-correction tally (embedded
    /// profiles of a matrix with limit classes only): `fix_idx[j]` is either
    /// [`NO_FIX_ROW`] — column `j` has no class-tagged in-records — or the
    /// packed row of `j`'s tally in `fix`/`pen`. Rows are allocated lazily on
    /// a column's first class-tagged record, so only the (usually small)
    /// constrained minority of components pays the `M_pad`-wide row; on
    /// timing-sparse circuits this is the profile's biggest allocation saved.
    fix_idx: Vec<u32>,
    /// Penalty-relevant tally for timing-constrained partners, packed by
    /// `fix_idx`: `fix[r·M_pad + i]` accumulates, over the column's
    /// class-tagged constrained in-records, the exact fix-up the η kernel
    /// applies on top of the base aggregate — `penalty − β·w·b[p][i]` on the
    /// violating entries of folded records, `β·w·b[p][i] − penalty` on the
    /// satisfying entries of unfolded ones — while `pen[r]` carries the
    /// unfolded records' row-wide penalty. Zero-weight timing pairs still
    /// tally: they contribute pure penalty entries.
    fix: Vec<Cost>,
    pen: Vec<Cost>,
    /// Patch tables copied from the matrix's limit classes (embedded
    /// profiles only): entries `patch_off[c·M + p]..patch_off[c·M + p + 1]`
    /// of the parallel index/wire-cost arrays are the η-kernel patch list
    /// for class `c` and source partition `p` — the violating set when
    /// folded, the satisfying set otherwise.
    patch_off: Vec<u32>,
    patch_idx: Vec<u16>,
    patch_b: Vec<Cost>,
    /// The matrix's timing penalty and the problem's interconnect
    /// coefficient β (embedded profiles only).
    penalty: Cost,
    beta: Cost,
}

impl PartitionProfile {
    /// Builds a plain (circuit-direction) profile synced to `assignment`:
    /// both `out_row` and `in_row` aggregate every nonzero connection.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not match the problem's dimensions.
    pub fn plain(problem: &Problem, assignment: &Assignment) -> Self {
        let mut profile = Self::plain_unsynced(problem);
        profile.rebuild(assignment);
        profile
    }

    /// [`PartitionProfile::plain`] with the initial sync fanned across up to
    /// `threads` workers ([`PartitionProfile::rebuild_par`]); bit-identical
    /// for every thread count. Returns the profile and the number of worker
    /// chunks the sync used (`1` = serial).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not match the problem's dimensions.
    pub fn plain_par(problem: &Problem, assignment: &Assignment, threads: usize) -> (Self, usize) {
        let mut profile = Self::plain_unsynced(problem);
        let chunks = profile.rebuild_par(assignment, threads);
        (profile, chunks)
    }

    /// The structure-assembly half of [`PartitionProfile::plain`]: CSR
    /// copies and padded wire-cost tables built, aggregates still zero.
    fn plain_unsynced(problem: &Problem) -> Self {
        let n = problem.n();
        let m = problem.m();
        let m_pad = padded_partitions(m);
        let circuit = problem.circuit();
        let b = problem.topology().wire_cost();
        let mut b_pad = vec![0; m * m_pad];
        let mut bt_pad = vec![0; m * m_pad];
        for p in 0..m {
            for (t, &v) in b.row(p).iter().enumerate() {
                b_pad[p * m_pad + t] = v;
                bt_pad[t * m_pad + p] = v;
            }
        }
        let mut profile = PartitionProfile {
            n,
            m,
            m_pad,
            out_agg: vec![0; n * m_pad],
            in_agg: vec![0; n * m_pad],
            b_pad,
            bt_pad,
            out_off: Vec::with_capacity(n + 1),
            out_other: Vec::new(),
            out_w: Vec::new(),
            out_tag: Vec::new(),
            in_off: Vec::with_capacity(n + 1),
            in_other: Vec::new(),
            in_w: Vec::new(),
            folded: Vec::new(),
            fix_idx: Vec::new(),
            fix: Vec::new(),
            pen: Vec::new(),
            patch_off: Vec::new(),
            patch_idx: Vec::new(),
            patch_b: Vec::new(),
            penalty: 0,
            beta: 0,
        };
        profile.out_off.push(0);
        profile.in_off.push(0);
        for j in 0..n {
            let id = crate::ComponentId::new(j);
            for (k, w) in circuit.out_connections(id) {
                profile.out_other.push(k.index() as u32);
                profile.out_w.push(w);
                profile.out_tag.push(TAG_ALWAYS);
            }
            profile.out_off.push(profile.out_other.len() as u32);
            for (k, w) in circuit.in_connections(id) {
                profile.in_other.push(k.index() as u32);
                profile.in_w.push(w);
            }
            profile.in_off.push(profile.in_other.len() as u32);
        }
        profile
    }

    /// Builds an embedded (η-direction) profile of `q` synced to
    /// `assignment`: `in_row(j)` holds the base aggregate consumed by
    /// [`QMatrix::eta_profiled`](crate::QMatrix::eta_profiled) —
    /// unconstrained in-weights plus the constrained in-weights whose limit
    /// class is folded for the source's current partition. `out_row` is not
    /// tracked.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not match the problem's dimensions.
    pub fn embedded(q: &QMatrix<'_>, assignment: &Assignment) -> Self {
        let mut profile = Self::embedded_unsynced(q);
        profile.rebuild(assignment);
        profile
    }

    /// [`PartitionProfile::embedded`] with the initial sync fanned across up
    /// to `threads` workers ([`PartitionProfile::rebuild_par`]);
    /// bit-identical for every thread count — including the lazy
    /// constrained-correction row packing order. Returns the profile and the
    /// number of worker chunks the sync used (`1` = serial).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not match the problem's dimensions.
    pub fn embedded_par(q: &QMatrix<'_>, assignment: &Assignment, threads: usize) -> (Self, usize) {
        let mut profile = Self::embedded_unsynced(q);
        let chunks = profile.rebuild_par(assignment, threads);
        (profile, chunks)
    }

    /// The structure-assembly half of [`PartitionProfile::embedded`]: CSR
    /// copy and class tables built, aggregates still zero.
    fn embedded_unsynced(q: &QMatrix<'_>) -> Self {
        let problem = q.problem();
        let n = problem.n();
        let m = problem.m();
        let m_pad = padded_partitions(m);
        let classes = q.timing_classes();
        let out = q.out_csr();
        let mut profile = PartitionProfile {
            n,
            m,
            m_pad,
            out_agg: Vec::new(),
            in_agg: vec![0; n * m_pad],
            b_pad: Vec::new(),
            bt_pad: Vec::new(),
            out_off: Vec::with_capacity(n + 1),
            out_other: Vec::new(),
            out_w: Vec::new(),
            out_tag: Vec::new(),
            in_off: Vec::new(),
            in_other: Vec::new(),
            in_w: Vec::new(),
            folded: Vec::with_capacity(classes.class_count() * m),
            fix_idx: Vec::new(),
            fix: Vec::new(),
            pen: Vec::new(),
            patch_off: Vec::new(),
            patch_idx: Vec::new(),
            patch_b: Vec::new(),
            penalty: q.penalty(),
            beta: problem.beta(),
        };
        for c in 0..classes.class_count() {
            for p in 0..m {
                profile.folded.push(classes.folded(c as u16, p));
            }
        }
        if classes.class_count() > 0 {
            let (off, idx, b) = classes.patch_tables();
            profile.patch_off = off.to_vec();
            profile.patch_idx = idx.to_vec();
            profile.patch_b = b.to_vec();
            // Correction rows themselves are allocated lazily, on each
            // column's first class-tagged record (see `ensure_fix_row`).
            profile.fix_idx = vec![NO_FIX_ROW; n];
        }
        profile.out_off.push(0);
        for j in 0..n {
            for (k, w) in out.unconstrained(j) {
                profile.out_other.push(k as u32);
                profile.out_w.push(w);
                profile.out_tag.push(TAG_ALWAYS);
            }
            for (_, k, w, limit) in out.constrained(j) {
                profile.out_other.push(k as u32);
                profile.out_w.push(w);
                let c = classes.class_of(limit);
                profile
                    .out_tag
                    .push(if c == NO_CLASS { TAG_NEVER } else { c });
            }
            profile.out_off.push(profile.out_other.len() as u32);
        }
        profile
    }

    /// Number of partitions `M` (the logical length of each aggregate row).
    pub fn m(&self) -> usize {
        self.m
    }

    /// The padded aggregate-row stride: [`padded_partitions`]`(M)`.
    pub fn padded_m(&self) -> usize {
        self.m_pad
    }

    /// Number of components `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes of heap owned by the profile's buffers (capacity, not length),
    /// for the allocation audit in `perf_snapshot`: the aggregate rows, the
    /// padded wire-cost copies, the tracked adjacencies, and the timing
    /// patch tables.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.out_agg.capacity()
            + self.in_agg.capacity()
            + self.b_pad.capacity()
            + self.bt_pad.capacity()
            + self.out_w.capacity()
            + self.in_w.capacity()
            + self.fix.capacity()
            + self.pen.capacity()
            + self.patch_b.capacity())
            * size_of::<Cost>()
            + (self.out_off.capacity()
                + self.out_other.capacity()
                + self.in_off.capacity()
                + self.in_other.capacity()
                + self.patch_off.capacity()
                + self.fix_idx.capacity())
                * size_of::<u32>()
            + (self.out_tag.capacity() + self.patch_idx.capacity()) * size_of::<u16>()
            + self.folded.capacity() * size_of::<bool>()
    }

    /// Estimated heap of this profile under the pre-compaction layout, where
    /// the constrained-correction tally was dense — one `M_pad`-wide `fix`
    /// row and one `pen` slot for *every* component instead of only the
    /// constrained minority (and no `fix_idx`). `heap_bytes()` relative to
    /// this is the layout reduction reported by the bench harness's
    /// `scale_bench`.
    pub fn dense_layout_bytes(&self) -> usize {
        use std::mem::size_of;
        if self.fix_idx.is_empty() {
            return self.heap_bytes();
        }
        self.heap_bytes() - self.fix_idx.capacity() * size_of::<u32>()
            - (self.fix.capacity() + self.pen.capacity()) * size_of::<Cost>()
            + self.n * (self.m_pad + 1) * size_of::<Cost>()
    }

    /// The out-direction aggregate row of `j`:
    /// `out_row(j)[p] = Σ_{k ∈ out(j), A(k) = p} a[j][k]`.
    ///
    /// # Panics
    ///
    /// Panics on embedded profiles (which do not track the out direction) or
    /// when `j` is out of range.
    pub fn out_row(&self, j: usize) -> &[Cost] {
        assert!(
            !self.out_agg.is_empty(),
            "embedded profiles do not track the out direction"
        );
        &self.out_agg[j * self.m_pad..j * self.m_pad + self.m]
    }

    /// [`PartitionProfile::out_row`] at the full padded stride (pad lanes
    /// are zero), for the branchless 4-lane kernels.
    #[inline]
    pub(crate) fn out_row_padded(&self, j: usize) -> &[Cost] {
        &self.out_agg[j * self.m_pad..(j + 1) * self.m_pad]
    }

    /// The in-direction aggregate row of `j`:
    /// `in_row(j)[p] = Σ_{k ∈ in(j), A(k) = p} a[k][j]` (restricted to
    /// folded records for embedded profiles).
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn in_row(&self, j: usize) -> &[Cost] {
        &self.in_agg[j * self.m_pad..j * self.m_pad + self.m]
    }

    /// [`PartitionProfile::in_row`] at the full padded stride (pad lanes are
    /// zero).
    #[inline]
    pub(crate) fn in_row_padded(&self, j: usize) -> &[Cost] {
        &self.in_agg[j * self.m_pad..(j + 1) * self.m_pad]
    }

    /// Row `p` of the padded wire-cost copy: `b[p][·]` at the padded stride
    /// (plain profiles only).
    #[inline]
    pub(crate) fn wire_row_padded(&self, p: usize) -> &[Cost] {
        &self.b_pad[p * self.m_pad..(p + 1) * self.m_pad]
    }

    /// Row `t` of the padded wire-cost transpose: `b[·][t]` as a contiguous
    /// row at the padded stride (plain profiles only).
    #[inline]
    pub(crate) fn wire_col_padded(&self, t: usize) -> &[Cost] {
        &self.bt_pad[t * self.m_pad..(t + 1) * self.m_pad]
    }

    /// The constrained-correction row of column `j` and its row-wide
    /// penalty: the η kernel adds the row elementwise and the penalty to
    /// every entry. `None` when the profile tracks no limit classes or
    /// column `j` has no correction row (its tally is identically zero
    /// either way, so skipping the add is bit-identical).
    pub(crate) fn constrained_fix(&self, j: usize) -> Option<(&[Cost], Cost)> {
        let r = *self.fix_idx.get(j)?;
        if r == NO_FIX_ROW {
            return None;
        }
        let r = r as usize;
        Some((
            &self.fix[r * self.m_pad..r * self.m_pad + self.m],
            self.pen[r],
        ))
    }

    /// The packed correction row of column `k`, allocating a zeroed one on
    /// the column's first class-tagged record.
    #[inline]
    fn ensure_fix_row(&mut self, k: usize) -> usize {
        let r = self.fix_idx[k];
        if r != NO_FIX_ROW {
            return r as usize;
        }
        let r = self.pen.len();
        self.fix_idx[k] = r as u32;
        self.fix.resize(self.fix.len() + self.m_pad, 0);
        self.pen.push(0);
        r
    }

    /// Adds (`sign = 1`) or removes (`sign = -1`) one class-`c` record of
    /// weight `w` with its source in partition `p` from partner column `k`'s
    /// correction tally, by replaying the `(c, p)` patch list.
    #[inline]
    fn replay(&mut self, k: usize, c: u16, p: usize, sign: Cost, w: Cost) {
        let r = self.ensure_fix_row(k);
        let cp = c as usize * self.m + p;
        let s = self.patch_off[cp] as usize;
        let t = self.patch_off[cp + 1] as usize;
        let coeff = self.beta * w;
        let row = &mut self.fix[r * self.m_pad..r * self.m_pad + self.m];
        if self.folded[cp] {
            for (&i, &bi) in self.patch_idx[s..t].iter().zip(&self.patch_b[s..t]) {
                row[i as usize] += sign * (self.penalty - coeff * bi);
            }
        } else {
            self.pen[r] += sign * self.penalty;
            for (&i, &bi) in self.patch_idx[s..t].iter().zip(&self.patch_b[s..t]) {
                row[i as usize] += sign * (coeff * bi - self.penalty);
            }
        }
    }

    /// Whether a record with fold tag `tag` counts toward the base aggregate
    /// while its source sits in partition `p`.
    #[inline]
    fn folds(&self, tag: u16, p: usize) -> bool {
        match tag {
            TAG_ALWAYS => true,
            TAG_NEVER => false,
            c => self.folded[c as usize * self.m + p],
        }
    }

    /// Recomputes every aggregate from scratch for `assignment` (`O(E + T)`).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not match the profile's dimensions.
    pub fn rebuild(&mut self, assignment: &Assignment) {
        assert_eq!(assignment.len(), self.n, "assignment length mismatch");
        let m_pad = self.m_pad;
        self.in_agg.fill(0);
        self.out_agg.fill(0);
        self.fix.fill(0);
        self.pen.fill(0);
        let track_out = !self.out_agg.is_empty();
        for j in 0..self.n {
            let pj = assignment.part_index(j);
            for e in self.out_off[j] as usize..self.out_off[j + 1] as usize {
                let k = self.out_other[e] as usize;
                let w = self.out_w[e];
                let tag = self.out_tag[e];
                if tag < TAG_NEVER {
                    // Class-tagged record: tally its η fix-up (zero-weight
                    // timing pairs included — they are pure penalty).
                    self.replay(k, tag, pj, 1, w);
                }
                if w == 0 {
                    continue;
                }
                if self.folds(tag, pj) {
                    self.in_agg[k * m_pad + pj] += w;
                }
                if track_out {
                    self.out_agg[j * m_pad + assignment.part_index(k)] += w;
                }
            }
        }
    }

    /// [`PartitionProfile::rebuild`] fanned across up to `threads` scoped
    /// workers. Returns the number of worker chunks used (`1` = the serial
    /// rebuild ran). **Bit-identical to the serial rebuild for every thread
    /// count**:
    ///
    /// * **Plain profiles** are rebuilt row-locally — each worker owns a
    ///   contiguous range of aggregate rows and derives `in_row(k)` from the
    ///   in-CSR and `out_row(j)` from the out-CSR, so no two workers touch
    ///   the same slot and every slot receives the same exact-`i64` sum the
    ///   serial source-major sweep produces (addition is commutative and
    ///   exact; the CSR directions mirror each other, which the incremental
    ///   `apply_move` path already relies on).
    /// * **Embedded profiles** fold per-source contributions, which scatter
    ///   into partner columns, so each worker scans a contiguous *source*
    ///   chunk into a private dense partial (aggregate and correction
    ///   tallies plus the chunk-local first-encounter order of corrected
    ///   columns); a
    ///   serial merge then adds the partials in chunk order. Values are
    ///   exact commutative sums, and the lazy `fix_idx` packing order is
    ///   reproduced exactly: concatenating chunk-local first encounters in
    ///   chunk order visits columns in the serial sweep's global
    ///   first-encounter order for any contiguous chunking.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not match the profile's dimensions.
    pub fn rebuild_par(&mut self, assignment: &Assignment, threads: usize) -> usize {
        assert_eq!(assignment.len(), self.n, "assignment length mismatch");
        // Cap the embedded path's transient dense partials at ~256 MiB
        // total. The cap changes only how wide the fan is, never the result.
        let workers = crate::par::workers_for(threads, self.n).min(if self.in_off.is_empty() {
            ((1usize << 25) / (self.n * self.m_pad).max(1)).max(1)
        } else {
            usize::MAX
        });
        if workers <= 1 {
            self.rebuild(assignment);
            return 1;
        }
        if !self.in_off.is_empty() {
            self.rebuild_par_plain(assignment, workers)
        } else {
            self.rebuild_par_embedded(assignment, workers)
        }
    }

    /// Row-local parallel rebuild of a plain profile (both CSR directions
    /// present, no fold tags other than "always", no correction rows).
    fn rebuild_par_plain(&mut self, assignment: &Assignment, workers: usize) -> usize {
        let m_pad = self.m_pad;
        let mut in_agg = std::mem::take(&mut self.in_agg);
        let mut out_agg = std::mem::take(&mut self.out_agg);
        let this = &*self;
        let chunks = crate::par::for_each_row(workers, m_pad, &mut in_agg, |k, slot| {
            slot.fill(0);
            for e in this.in_off[k] as usize..this.in_off[k + 1] as usize {
                slot[assignment.part_index(this.in_other[e] as usize)] += this.in_w[e];
            }
        });
        crate::par::for_each_row(workers, m_pad, &mut out_agg, |j, slot| {
            slot.fill(0);
            for e in this.out_off[j] as usize..this.out_off[j + 1] as usize {
                slot[assignment.part_index(this.out_other[e] as usize)] += this.out_w[e];
            }
        });
        self.in_agg = in_agg;
        self.out_agg = out_agg;
        chunks
    }

    /// Chunked-partial parallel rebuild of an embedded profile: private
    /// per-worker partials over contiguous source chunks, merged serially in
    /// chunk order (see [`PartitionProfile::rebuild_par`] for the
    /// determinism argument).
    fn rebuild_par_embedded(&mut self, assignment: &Assignment, workers: usize) -> usize {
        struct Partial {
            in_agg: Vec<Cost>,
            /// Corrected columns in chunk-local first-encounter order; the
            /// `i`-th entry's tally is row `i` of `fix` / `pen`.
            enc: Vec<u32>,
            fix: Vec<Cost>,
            pen: Vec<Cost>,
        }
        let n = self.n;
        let m = self.m;
        let m_pad = self.m_pad;
        let this = &*self;
        let partials = crate::par::map_chunks(workers, n, |_, range| {
            let mut part = Partial {
                in_agg: vec![0; n * m_pad],
                enc: Vec::new(),
                fix: Vec::new(),
                pen: Vec::new(),
            };
            let mut local_row = vec![NO_FIX_ROW; if this.fix_idx.is_empty() { 0 } else { n }];
            for j in range {
                let pj = assignment.part_index(j);
                for e in this.out_off[j] as usize..this.out_off[j + 1] as usize {
                    let k = this.out_other[e] as usize;
                    let w = this.out_w[e];
                    let tag = this.out_tag[e];
                    if tag < TAG_NEVER {
                        // Chunk-local mirror of `replay` (sign +1) into the
                        // private partial tallies.
                        let mut r = local_row[k] as usize;
                        if local_row[k] == NO_FIX_ROW {
                            r = part.pen.len();
                            local_row[k] = r as u32;
                            part.enc.push(k as u32);
                            part.fix.resize(part.fix.len() + m_pad, 0);
                            part.pen.push(0);
                        }
                        let cp = tag as usize * m + pj;
                        let s = this.patch_off[cp] as usize;
                        let t = this.patch_off[cp + 1] as usize;
                        let coeff = this.beta * w;
                        let row = &mut part.fix[r * m_pad..r * m_pad + m];
                        if this.folded[cp] {
                            for (&i, &bi) in this.patch_idx[s..t].iter().zip(&this.patch_b[s..t])
                            {
                                row[i as usize] += this.penalty - coeff * bi;
                            }
                        } else {
                            part.pen[r] += this.penalty;
                            for (&i, &bi) in this.patch_idx[s..t].iter().zip(&this.patch_b[s..t])
                            {
                                row[i as usize] += coeff * bi - this.penalty;
                            }
                        }
                    }
                    if w != 0 && this.folds(tag, pj) {
                        part.in_agg[k * m_pad + pj] += w;
                    }
                }
            }
            part
        });
        let chunks = partials.len();
        self.in_agg.fill(0);
        self.fix.fill(0);
        self.pen.fill(0);
        for part in partials {
            add_rows(&mut self.in_agg, &part.in_agg);
            for (i, &k) in part.enc.iter().enumerate() {
                let r = self.ensure_fix_row(k as usize);
                add_rows(
                    &mut self.fix[r * m_pad..(r + 1) * m_pad],
                    &part.fix[i * m_pad..(i + 1) * m_pad],
                );
                self.pen[r] += part.pen[i];
            }
        }
        chunks
    }

    /// [`PartitionProfile::update`] with the rebuild branch fanned across up
    /// to `threads` workers; the patch branch is already `O(moved·deg)` and
    /// stays serial. Returns `(rebuilt, moved, chunks)`; bit-identical to
    /// the serial update for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if either assignment does not match the profile's dimensions.
    pub fn update_par(
        &mut self,
        prev: &Assignment,
        next: &Assignment,
        threads: usize,
    ) -> (bool, usize, usize) {
        assert_eq!(prev.len(), self.n, "prev assignment length mismatch");
        assert_eq!(next.len(), self.n, "next assignment length mismatch");
        let moved: Vec<usize> = (0..self.n)
            .filter(|&j| prev.part_index(j) != next.part_index(j))
            .collect();
        if moved.len() * 4 > self.n * 3 {
            let chunks = self.rebuild_par(next, threads);
            return (true, moved.len(), chunks);
        }
        for &j in &moved {
            self.apply_move(j, prev.part_index(j), next.part_index(j));
        }
        (false, moved.len(), 1)
    }

    /// Patches the aggregates for a committed move of component `j` from
    /// partition `from` to partition `to` (`O(deg(j))`).
    ///
    /// Only the *partners'* rows change — a component's own rows aggregate
    /// its neighbors' positions — so the patch never reads the assignment
    /// and a swap is exactly two `apply_move` calls, in either order.
    ///
    /// # Panics
    ///
    /// Panics if `j`, `from` or `to` is out of range.
    pub fn apply_move(&mut self, j: usize, from: usize, to: usize) {
        if from == to {
            return;
        }
        assert!(j < self.n && from < self.m && to < self.m, "index out of range");
        let m_pad = self.m_pad;
        for e in self.out_off[j] as usize..self.out_off[j + 1] as usize {
            let k = self.out_other[e] as usize;
            let w = self.out_w[e];
            let tag = self.out_tag[e];
            if tag < TAG_NEVER {
                // Class-tagged record: re-tally its η fix-up for the new
                // source partition (zero-weight timing pairs included).
                self.replay(k, tag, from, -1, w);
                self.replay(k, tag, to, 1, w);
            }
            if w == 0 {
                continue;
            }
            match tag {
                TAG_ALWAYS => {
                    self.in_agg[k * m_pad + from] -= w;
                    self.in_agg[k * m_pad + to] += w;
                }
                TAG_NEVER => {}
                c => {
                    if self.folded[c as usize * self.m + from] {
                        self.in_agg[k * m_pad + from] -= w;
                    }
                    if self.folded[c as usize * self.m + to] {
                        self.in_agg[k * m_pad + to] += w;
                    }
                }
            }
        }
        if !self.out_agg.is_empty() {
            for e in self.in_off[j] as usize..self.in_off[j + 1] as usize {
                let k = self.in_other[e] as usize;
                let w = self.in_w[e];
                self.out_agg[k * m_pad + from] -= w;
                self.out_agg[k * m_pad + to] += w;
            }
        }
    }

    /// Syncs a profile reflecting `prev` to reflect `next`: patches each
    /// moved component with [`PartitionProfile::apply_move`] when at most
    /// `3N/4` moved, otherwise rebuilds from scratch.
    ///
    /// The threshold is deliberately looser than the `N/2` fallback of
    /// [`QMatrix::eta_update`](crate::QMatrix::eta_update): a patch costs
    /// `O(moved · (deg + M))` against a rebuild's `O(E + N·M)`, so patching
    /// stays cheaper until nearly every component moved; `3N/4` leaves
    /// margin for the patch path's worse constant factors.
    ///
    /// Returns `(rebuilt, moved)` — whether the full rebuild path ran, and
    /// how many components changed partition.
    ///
    /// # Panics
    ///
    /// Panics if either assignment does not match the profile's dimensions.
    pub fn update(&mut self, prev: &Assignment, next: &Assignment) -> (bool, usize) {
        assert_eq!(prev.len(), self.n, "prev assignment length mismatch");
        assert_eq!(next.len(), self.n, "next assignment length mismatch");
        let moved: Vec<usize> = (0..self.n)
            .filter(|&j| prev.part_index(j) != next.part_index(j))
            .collect();
        if moved.len() * 4 > self.n * 3 {
            self.rebuild(next);
            return (true, moved.len());
        }
        for &j in &moved {
            self.apply_move(j, prev.part_index(j), next.part_index(j));
        }
        (false, moved.len())
    }

    /// Syncs an **embedded** profile to a structurally edited matrix: for
    /// each component in `touched` (whose adjacency or constraints changed
    /// in `q` since this profile was built), un-applies the old stored out
    /// row from the aggregates, splices in the row `q` now holds, and
    /// re-applies it — `O(touched·(deg + M))` plus an `O(E + T)` audit scan.
    /// `assignment` must be the assignment the profile is currently synced
    /// to (positions are unchanged by a structure edit).
    ///
    /// Falls back to a full [`PartitionProfile::embedded`] rebuild (and
    /// returns `true`) when the patch cannot be local: the dimensions or the
    /// matrix's limit-class tables changed (a new distinct timing limit
    /// re-maps class indices profile-wide), or the audit scan finds any row
    /// outside `touched` disagreeing with `q` (a caller that under-reported
    /// the touched set still gets a correct profile). Either way the result
    /// is **bit-identical** to a fresh `embedded(q, assignment)`
    /// (property-tested): all aggregate arithmetic is exact `i64`
    /// add/subtract, so un-apply + re-apply cancels exactly.
    ///
    /// # Panics
    ///
    /// Panics on plain profiles (rebuild those with
    /// [`PartitionProfile::plain`]) or when `assignment` mismatches `q`.
    pub fn patch_structure(
        &mut self,
        q: &QMatrix<'_>,
        assignment: &Assignment,
        touched: &[usize],
    ) -> bool {
        assert!(
            self.out_agg.is_empty(),
            "patch_structure applies to embedded profiles only"
        );
        let problem = q.problem();
        if self.n != problem.n() || self.m != problem.m() {
            *self = Self::embedded(q, assignment);
            return true;
        }
        assert_eq!(assignment.len(), self.n, "assignment length mismatch");
        let classes = q.timing_classes();
        let class_tables_match = self.penalty == q.penalty()
            && self.beta == problem.beta()
            && self.folded.len() == classes.class_count() * self.m
            && (0..classes.class_count()).all(|c| {
                (0..self.m).all(|p| self.folded[c * self.m + p] == classes.folded(c as u16, p))
            })
            && {
                if classes.class_count() > 0 {
                    let (off, idx, b) = classes.patch_tables();
                    self.patch_off == off && self.patch_idx == idx && self.patch_b == b
                } else {
                    self.patch_off.is_empty()
                }
            };
        if !class_tables_match {
            *self = Self::embedded(q, assignment);
            return true;
        }
        let out = q.out_csr();
        let m_pad = self.m_pad;
        let mut rows: Vec<usize> = touched.to_vec();
        rows.sort_unstable();
        rows.dedup();
        for &j in &rows {
            assert!(j < self.n, "touched component out of range");
            let pj = assignment.part_index(j);
            // Un-apply the old stored row (mirror of the rebuild body,
            // sign −1).
            for e in self.out_off[j] as usize..self.out_off[j + 1] as usize {
                let k = self.out_other[e] as usize;
                let w = self.out_w[e];
                let tag = self.out_tag[e];
                if tag < TAG_NEVER {
                    self.replay(k, tag, pj, -1, w);
                }
                if w != 0 && self.folds(tag, pj) {
                    self.in_agg[k * m_pad + pj] -= w;
                }
            }
            // Splice in the row the matrix now holds.
            let mut no: Vec<u32> = Vec::new();
            let mut nw: Vec<Cost> = Vec::new();
            let mut nt: Vec<u16> = Vec::new();
            for (k, w) in out.unconstrained(j) {
                no.push(k as u32);
                nw.push(w);
                nt.push(TAG_ALWAYS);
            }
            for (_, k, w, limit) in out.constrained(j) {
                no.push(k as u32);
                nw.push(w);
                let c = classes.class_of(limit);
                nt.push(if c == NO_CLASS { TAG_NEVER } else { c });
            }
            let lo = self.out_off[j] as usize;
            let hi = self.out_off[j + 1] as usize;
            let delta = no.len() as i64 - (hi - lo) as i64;
            self.out_other.splice(lo..hi, no);
            self.out_w.splice(lo..hi, nw);
            self.out_tag.splice(lo..hi, nt);
            for o in &mut self.out_off[j + 1..] {
                *o = (*o as i64 + delta) as u32;
            }
            // Re-apply the new row (sign +1).
            for e in lo..self.out_off[j + 1] as usize {
                let k = self.out_other[e] as usize;
                let w = self.out_w[e];
                let tag = self.out_tag[e];
                if tag < TAG_NEVER {
                    self.replay(k, tag, pj, 1, w);
                }
                if w != 0 && self.folds(tag, pj) {
                    self.in_agg[k * m_pad + pj] += w;
                }
            }
        }
        // Audit: every stored row must now agree with the matrix record for
        // record. Catches under-reported touched sets and the corner case
        // where a changed limit set produced coincidentally identical class
        // tables but shifted class indices.
        let mut ok = true;
        'rows: for j in 0..self.n {
            let hi = self.out_off[j + 1] as usize;
            let mut e = self.out_off[j] as usize;
            for (k, w) in out.unconstrained(j) {
                if e >= hi
                    || self.out_other[e] != k as u32
                    || self.out_w[e] != w
                    || self.out_tag[e] != TAG_ALWAYS
                {
                    ok = false;
                    break 'rows;
                }
                e += 1;
            }
            for (_, k, w, limit) in out.constrained(j) {
                let c = classes.class_of(limit);
                let tag = if c == NO_CLASS { TAG_NEVER } else { c };
                if e >= hi
                    || self.out_other[e] != k as u32
                    || self.out_w[e] != w
                    || self.out_tag[e] != tag
                {
                    ok = false;
                    break 'rows;
                }
                e += 1;
            }
            if e != hi {
                ok = false;
                break;
            }
        }
        if !ok {
            *self = Self::embedded(q, assignment);
            return true;
        }
        false
    }

    /// Whether column `j`'s constrained-correction tally matches `other`'s,
    /// by value: an absent packed row equals a present all-zero one.
    fn fix_column_eq(&self, other: &Self, j: usize) -> bool {
        match (self.constrained_fix(j), other.constrained_fix(j)) {
            (None, None) => true,
            (Some((row, pen)), None) | (None, Some((row, pen))) => {
                pen == 0 && row.iter().all(|&v| v == 0)
            }
            (Some((ra, pa)), Some((rb, pb))) => pa == pb && ra == rb,
        }
    }
}

/// Equality is structural except for the constrained-correction tally, which
/// is compared by *value per column*: packed `fix` rows are allocated lazily
/// in first-touch order, so an incrementally patched profile and a freshly
/// built one can pack semantically identical rows differently (including a
/// cancelled-to-zero row versus no row at all).
impl PartialEq for PartitionProfile {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n
            && self.m == other.m
            && self.m_pad == other.m_pad
            && self.out_agg == other.out_agg
            && self.in_agg == other.in_agg
            && self.b_pad == other.b_pad
            && self.bt_pad == other.bt_pad
            && self.out_off == other.out_off
            && self.out_other == other.out_other
            && self.out_w == other.out_w
            && self.out_tag == other.out_tag
            && self.in_off == other.in_off
            && self.in_other == other.in_other
            && self.in_w == other.in_w
            && self.folded == other.folded
            && self.patch_off == other.patch_off
            && self.patch_idx == other.patch_idx
            && self.patch_b == other.patch_b
            && self.penalty == other.penalty
            && self.beta == other.beta
            && (0..self.n).all(|j| self.fix_column_eq(other, j))
    }
}

impl Eq for PartitionProfile {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Circuit, ComponentId, Evaluator, PartitionId, PartitionTopology, ProblemBuilder,
        TimingConstraints,
    };

    fn diamond_problem() -> Problem {
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 1);
        let d = c.add_component("d", 1);
        let e = c.add_component("e", 1);
        c.add_connection(a, b, 5).unwrap();
        c.add_connection(a, d, 3).unwrap();
        c.add_connection(b, e, 2).unwrap();
        c.add_connection(d, e, 7).unwrap();
        c.add_connection(e, a, 1).unwrap();
        let mut tc = TimingConstraints::new(4);
        tc.add(a, e, 1).unwrap();
        tc.add_symmetric(b, d, 2).unwrap();
        ProblemBuilder::new(c, PartitionTopology::grid(2, 2, 100).unwrap())
            .timing(tc)
            .build()
            .unwrap()
    }

    #[test]
    fn plain_rows_match_direct_aggregation() {
        let problem = diamond_problem();
        let asg = Assignment::from_parts(vec![0, 1, 2, 3]).unwrap();
        let profile = PartitionProfile::plain(&problem, &asg);
        let circuit = problem.circuit();
        for j in 0..problem.n() {
            let mut out = vec![0; problem.m()];
            let mut inn = vec![0; problem.m()];
            for (k, w) in circuit.out_connections(ComponentId::new(j)) {
                out[asg.part_index(k.index())] += w;
            }
            for (k, w) in circuit.in_connections(ComponentId::new(j)) {
                inn[asg.part_index(k.index())] += w;
            }
            assert_eq!(profile.out_row(j), &out[..], "out row {j}");
            assert_eq!(profile.in_row(j), &inn[..], "in row {j}");
        }
    }

    #[test]
    fn padded_rows_carry_zero_pad_lanes() {
        // M = 3, 4, 5, 16 cover under-, exactly-, and over-one-lane-block
        // logical widths; pad lanes must stay zero through move sequences.
        for m in [3usize, 4, 5, 16] {
            let mut c = Circuit::new();
            let ids: Vec<_> = (0..6)
                .map(|j| c.add_component(format!("c{j}"), 1))
                .collect();
            for w in ids.windows(2) {
                c.add_connection(w[0], w[1], 3).unwrap();
            }
            c.add_connection(ids[5], ids[0], 2).unwrap();
            let problem =
                ProblemBuilder::new(c, PartitionTopology::grid(1, m, 100).unwrap())
                    .build()
                    .unwrap();
            let mut asg = Assignment::from_fn(6, |j| PartitionId::new(j.index() % m));
            let mut profile = PartitionProfile::plain(&problem, &asg);
            assert_eq!(profile.padded_m(), padded_partitions(m));
            assert!(profile.padded_m().is_multiple_of(SIMD_LANES) && profile.padded_m() >= m);
            for step in 0..5usize {
                let j = step % 6;
                let to = (step * 2 + 1) % m;
                let from = asg.part_index(j);
                asg.move_to(ComponentId::new(j), PartitionId::new(to));
                profile.apply_move(j, from, to);
                for jj in 0..6 {
                    assert_eq!(profile.out_row(jj).len(), m);
                    assert!(profile.out_row_padded(jj)[m..].iter().all(|&v| v == 0));
                    assert!(profile.in_row_padded(jj)[m..].iter().all(|&v| v == 0));
                }
            }
            assert_eq!(profile, PartitionProfile::plain(&problem, &asg));
        }
    }

    #[test]
    fn apply_move_matches_rebuild() {
        let problem = diamond_problem();
        let mut asg = Assignment::from_parts(vec![0, 0, 1, 2]).unwrap();
        let mut profile = PartitionProfile::plain(&problem, &asg);
        let moves = [(0, 3), (2, 0), (3, 1), (0, 2), (1, 3)];
        for (j, to) in moves {
            let from = asg.part_index(j);
            asg.move_to(ComponentId::new(j), PartitionId::new(to));
            profile.apply_move(j, from, to);
            assert_eq!(profile, PartitionProfile::plain(&problem, &asg));
        }
    }

    #[test]
    fn swap_is_two_moves_in_either_order() {
        let problem = diamond_problem();
        let mut asg = Assignment::from_parts(vec![0, 1, 2, 3]).unwrap();
        let mut ab = PartitionProfile::plain(&problem, &asg);
        let mut ba = ab.clone();
        // Swap components 0 and 3 (adjacent in the circuit).
        ab.apply_move(0, 0, 3);
        ab.apply_move(3, 3, 0);
        ba.apply_move(3, 3, 0);
        ba.apply_move(0, 0, 3);
        asg.swap(ComponentId::new(0), ComponentId::new(3));
        let fresh = PartitionProfile::plain(&problem, &asg);
        assert_eq!(ab, fresh);
        assert_eq!(ba, fresh);
    }

    #[test]
    fn update_patches_small_diffs_and_rebuilds_large_ones() {
        let problem = diamond_problem();
        let prev = Assignment::from_parts(vec![0, 1, 2, 3]).unwrap();
        let mut profile = PartitionProfile::plain(&problem, &prev);
        // Three moves out of four: still the patch path (3 ≤ 3·4/4).
        let next = Assignment::from_parts(vec![2, 3, 2, 0]).unwrap();
        let (rebuilt, moved) = profile.update(&prev, &next);
        assert!(!rebuilt);
        assert_eq!(moved, 3);
        assert_eq!(profile, PartitionProfile::plain(&problem, &next));
        // Every component moved: rebuild path (4 > 3·4/4).
        let far = Assignment::from_parts(vec![0, 1, 3, 2]).unwrap();
        let (rebuilt, moved) = profile.update(&next, &far);
        assert!(rebuilt);
        assert_eq!(moved, 4);
        assert_eq!(profile, PartitionProfile::plain(&problem, &far));
    }

    #[test]
    fn embedded_profile_backs_eta_profiled() {
        let problem = diamond_problem();
        let q = QMatrix::new(&problem, 50).unwrap();
        let mut asg = Assignment::from_parts(vec![0, 1, 2, 3]).unwrap();
        let mut profile = PartitionProfile::embedded(&q, &asg);
        let (mut fresh, mut fast) = (Vec::new(), Vec::new());
        q.eta(&asg, &mut fresh);
        q.eta_profiled(&asg, &profile, &mut fast);
        assert_eq!(fresh, fast);
        for (j, to) in [(0, 3), (3, 0), (1, 2), (2, 1)] {
            let from = asg.part_index(j);
            asg.move_to(ComponentId::new(j), PartitionId::new(to));
            profile.apply_move(j, from, to);
            q.eta(&asg, &mut fresh);
            q.eta_profiled(&asg, &profile, &mut fast);
            assert_eq!(fresh, fast, "after moving {j} to {to}");
        }
    }

    #[test]
    fn profiled_move_and_swap_deltas_match_plain() {
        let problem = diamond_problem();
        let eval = Evaluator::new(&problem);
        let asg = Assignment::from_parts(vec![0, 1, 1, 3]).unwrap();
        let profile = PartitionProfile::plain(&problem, &asg);
        for j in 0..4 {
            for to in 0..4 {
                assert_eq!(
                    eval.move_delta(&asg, ComponentId::new(j), PartitionId::new(to)),
                    eval.move_delta_profiled(
                        &profile,
                        &asg,
                        ComponentId::new(j),
                        PartitionId::new(to)
                    ),
                    "move {j} -> {to}"
                );
            }
            for j2 in 0..4 {
                assert_eq!(
                    eval.swap_delta(&asg, ComponentId::new(j), ComponentId::new(j2)),
                    eval.swap_delta_profiled_lookup(
                        &profile,
                        &asg,
                        ComponentId::new(j),
                        ComponentId::new(j2)
                    ),
                    "swap {j} <-> {j2}"
                );
            }
        }
    }

    #[test]
    fn lane_helpers_match_scalar_reference() {
        // Deterministic pseudo-random padded rows at several widths.
        for m_pad in [4usize, 8, 16] {
            let gen = |salt: i64| -> Vec<Cost> {
                (0..m_pad)
                    .map(|i| ((i as i64 * 37 + salt * 11) % 23) - 7)
                    .collect()
            };
            let (w, w2, x, y) = (gen(1), gen(2), gen(3), gen(4));
            let scalar: Cost = (0..m_pad).map(|p| w[p] * (x[p] - y[p])).sum();
            assert_eq!(dot_diff(&w, &x, &y), scalar);
            let scalar2: Cost = (0..m_pad).map(|p| (w[p] - w2[p]) * (x[p] - y[p])).sum();
            assert_eq!(dot_diff2(&w, &w2, &x, &y), scalar2);
            for logical in [m_pad - 3, m_pad - 1, m_pad] {
                let mut slot = gen(5)[..logical].to_vec();
                let mut expect = slot.clone();
                for (v, &bv) in expect.iter_mut().zip(&x) {
                    *v += 3 * bv;
                }
                axpy(&mut slot, 3, &x);
                assert_eq!(slot, expect, "axpy logical={logical}");
                let mut slot2 = gen(6)[..logical].to_vec();
                let mut expect2 = slot2.clone();
                for (v, &bv) in expect2.iter_mut().zip(&y) {
                    *v += bv;
                }
                add_rows(&mut slot2, &y);
                assert_eq!(slot2, expect2, "add_rows logical={logical}");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{
        Circuit, ComponentId, Evaluator, PartitionId, PartitionTopology, ProblemBuilder,
        TimingConstraints,
    };
    use proptest::prelude::*;

    /// A random timed problem, a random feasible-by-construction start, and a
    /// random committed-move sequence — the sequence is long relative to `N`
    /// so runs routinely cross the `3N/4` bulk-update threshold.
    fn arb_timed_instance() -> impl Strategy<
        Value = (
            Problem,
            Assignment,
            Vec<(usize, usize)>,
        ),
    > {
        (4usize..10, 2usize..6).prop_flat_map(|(n, m)| {
            let edges = proptest::collection::vec(
                (
                    (0..n, 0..n).prop_filter("no self loop", |(a, b)| a != b),
                    1i64..9,
                ),
                0..20,
            );
            let constraints = proptest::collection::vec(
                (
                    (0..n, 0..n).prop_filter("no self loop", |(a, b)| a != b),
                    1i64..4,
                ),
                0..8,
            );
            let parts = proptest::collection::vec(0u32..m as u32, n);
            let moves = proptest::collection::vec((0..n, 0..m), 1..24);
            (Just((n, m)), edges, constraints, parts, moves).prop_map(
                |((n, m), edges, constraints, parts, moves)| {
                    let mut circuit = Circuit::new();
                    for j in 0..n {
                        circuit.add_component(format!("c{j}"), 1);
                    }
                    for ((a, b), w) in edges {
                        circuit
                            .add_connection(ComponentId::new(a), ComponentId::new(b), w)
                            .unwrap();
                    }
                    let mut tc = TimingConstraints::new(n);
                    for ((a, b), l) in constraints {
                        tc.add(ComponentId::new(a), ComponentId::new(b), l).unwrap();
                    }
                    let topo = PartitionTopology::grid(1, m, 1000).unwrap();
                    let problem = ProblemBuilder::new(circuit, topo).timing(tc).build().unwrap();
                    let asg = Assignment::from_parts(parts).unwrap();
                    (problem, asg, moves)
                },
            )
        })
    }

    proptest! {
        // Satellite-3 coverage, η side: a patched embedded profile keeps
        // `eta_profiled` bit-identical to a fresh `eta` across random
        // committed-move sequences, including bulk `update` jumps that cross
        // the `3N/4` fallback threshold.
        #[test]
        fn profiled_eta_stays_bit_identical((problem, start, moves) in arb_timed_instance()) {
            let q = QMatrix::new(&problem, 50).unwrap();
            let mut asg = start.clone();
            let mut profile = PartitionProfile::embedded(&q, &asg);
            let (mut fresh, mut fast) = (Vec::new(), Vec::new());
            for (step, &(j, to)) in moves.iter().enumerate() {
                let from = asg.part_index(j);
                asg.move_to(ComponentId::new(j), PartitionId::new(to));
                profile.apply_move(j, from, to);
                q.eta(&asg, &mut fresh);
                q.eta_profiled(&asg, &profile, &mut fast);
                prop_assert_eq!(&fresh, &fast, "after move #{}", step);
            }
            // Bulk jump all the way back to the start: exercises whichever
            // side of the 3N/4 patch-vs-rebuild threshold the run lands on.
            let (_, moved) = profile.update(&asg, &start);
            prop_assert_eq!(moved, (0..problem.n())
                .filter(|&j| asg.part_index(j) != start.part_index(j)).count());
            q.eta(&start, &mut fresh);
            q.eta_profiled(&start, &profile, &mut fast);
            prop_assert_eq!(&fresh, &fast, "after bulk update");
        }

        // Satellite-3 coverage, gain side: profiled move gains (GFM) and
        // swap gains (GKL) from a patched plain profile are bit-identical
        // to the adjacency-walking deltas at every step.
        #[test]
        fn profiled_gains_stay_bit_identical((problem, start, moves) in arb_timed_instance()) {
            let eval = Evaluator::new(&problem);
            let n = problem.n();
            let m = problem.m();
            let mut asg = start;
            let mut profile = PartitionProfile::plain(&problem, &asg);
            for &(j, to) in &moves {
                for cand in 0..n {
                    for p in 0..m {
                        prop_assert_eq!(
                            eval.move_delta(&asg, ComponentId::new(cand), PartitionId::new(p)),
                            eval.move_delta_profiled(
                                &profile, &asg, ComponentId::new(cand), PartitionId::new(p)),
                            "move {} -> {}", cand, p
                        );
                    }
                    let other = (cand + j) % n;
                    prop_assert_eq!(
                        eval.swap_delta(&asg, ComponentId::new(cand), ComponentId::new(other)),
                        eval.swap_delta_profiled_lookup(
                            &profile, &asg, ComponentId::new(cand), ComponentId::new(other)),
                        "swap {} <-> {}", cand, other
                    );
                }
                let from = asg.part_index(j);
                asg.move_to(ComponentId::new(j), PartitionId::new(to));
                profile.apply_move(j, from, to);
            }
            prop_assert_eq!(&profile, &PartitionProfile::plain(&problem, &asg));
        }

        // Tentpole coverage: the fanned rebuild (plain row-local, embedded
        // chunk-merge) is bit-identical to the serial rebuild — including
        // the lazy `fix_idx` packing order — across thread counts, both
        // cold (`*_par` constructors) and mid-sequence (`rebuild_par` /
        // `update_par` after committed moves).
        #[test]
        fn parallel_rebuild_is_bit_identical((problem, start, moves) in arb_timed_instance()) {
            let q = QMatrix::new(&problem, 50).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let (plain, _) = PartitionProfile::plain_par(&problem, &start, threads);
                prop_assert_eq!(&plain, &PartitionProfile::plain(&problem, &start));
                let (embedded, _) = PartitionProfile::embedded_par(&q, &start, threads);
                prop_assert_eq!(&embedded, &PartitionProfile::embedded(&q, &start));
            }
            let mut asg = start.clone();
            for &(j, to) in &moves {
                asg.move_to(ComponentId::new(j), PartitionId::new(to));
            }
            for threads in [1usize, 2, 4, 8] {
                let mut plain = PartitionProfile::plain(&problem, &start);
                plain.rebuild_par(&asg, threads);
                prop_assert_eq!(&plain, &PartitionProfile::plain(&problem, &asg));
                let mut embedded = PartitionProfile::embedded(&q, &start);
                embedded.rebuild_par(&asg, threads);
                prop_assert_eq!(&embedded, &PartitionProfile::embedded(&q, &asg));
                let mut upd = PartitionProfile::embedded(&q, &start);
                let (rebuilt, moved, _) = upd.update_par(&start, &asg, threads);
                let mut upd_serial = PartitionProfile::embedded(&q, &start);
                let (rebuilt_s, moved_s) = upd_serial.update(&start, &asg);
                prop_assert_eq!((rebuilt, moved), (rebuilt_s, moved_s));
                prop_assert_eq!(&upd, &upd_serial);
            }
        }
    }
}
