//! Problem model and exact Quadratic Boolean Programming (QBP) formulation for
//! performance-driven system partitioning.
//!
//! This crate implements the mathematical core of Shih & Kuh, *"Quadratic
//! Boolean Programming for Performance-Driven System Partitioning"*
//! (UCB/ERL M93/19, DAC 1993): assigning `N` variable-size circuit components
//! to `M` fixed partitions (MCM chip slots, FPGAs, ...) under
//!
//! * **capacity constraints (C1)** — the total size of the components placed
//!   in a partition may not exceed that partition's capacity,
//! * **timing constraints (C2)** — a sparse set of maximum allowed routing
//!   delays between component pairs, checked against the inter-partition
//!   delay matrix, and
//! * **generalized upper bound constraints (C3)** — every component is placed
//!   in exactly one partition,
//!
//! minimizing a weighted sum of a *linear* placement cost (`α·Σ p[i][j]`) and
//! a *quadratic* interconnect cost (`β·Σ a[j1][j2]·b[i1][i2]`).
//!
//! The central object is [`QMatrix`]: the implicit, sparse cost matrix `Q̂` of
//! the equivalent *unconstrained-in-timing* quadratic boolean program obtained
//! by overwriting every timing-violating entry with a penalty (the paper's
//! Theorems 1 and 2). Solvers never materialize `Q̂`; they use
//! [`QMatrix::eta`] / [`QMatrix::omega`] / [`QMatrix::value`], which walk the
//! sparse connection and constraint lists.
//!
//! # Example
//!
//! Build a four-partition 2×2 grid, place three components, and evaluate the
//! objective:
//!
//! ```
//! use qbp_core::{Circuit, PartitionTopology, ProblemBuilder, Assignment, Evaluator};
//!
//! # fn main() -> Result<(), qbp_core::Error> {
//! let mut circuit = Circuit::new();
//! let a = circuit.add_component("a", 10);
//! let b = circuit.add_component("b", 20);
//! let c = circuit.add_component("c", 15);
//! circuit.add_wires(a, b, 5)?;
//! circuit.add_wires(b, c, 2)?;
//!
//! let topology = PartitionTopology::grid(2, 2, 100)?;
//! let problem = ProblemBuilder::new(circuit, topology).build()?;
//!
//! let assignment = Assignment::from_parts(vec![0, 1, 3])?;
//! let cost = Evaluator::new(&problem).cost(&assignment);
//! assert_eq!(cost, 2 * (5 * 1 + 2 * 1)); // both wire bundles span distance 1
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod assignment;
mod circuit;
mod constraints;
mod error;
pub mod exec;
pub mod fault;
mod feasibility;
pub mod hw;
mod ids;
pub mod io;
mod matrix;
pub mod moves;
pub mod netlist;
mod objective;
pub mod par;
mod problem;
mod profile;
mod qmatrix;
pub mod stats;
mod topology;

pub use assignment::Assignment;
pub use circuit::{Circuit, Component};
pub use constraints::TimingConstraints;
pub use error::{Error, QbpError};
pub use exec::{Budget, CancelToken, ExecCtx, ExecStatus};
pub use feasibility::{
    check_feasibility, move_is_timing_feasible, swap_is_timing_feasible, CapacityViolation,
    FeasibilityReport, TimingViolation, UsageTracker,
};
pub use ids::{ComponentId, PairIndex, PartitionId};
pub use matrix::DenseMatrix;
pub use objective::Evaluator;
pub use problem::{deviation_cost_matrix, Problem, ProblemBuilder};
pub use profile::{padded_partitions, PartitionProfile, SIMD_LANES};
pub use qmatrix::{NestedEtaBaseline, QBody, QMatrix};
pub use topology::PartitionTopology;

/// Cost values (wire cost, linear assignment cost, objective values).
///
/// All costs are exact 64-bit integers so that objective evaluation is
/// reproducible and property-testable; callers that need fractional weights
/// should pre-scale.
pub type Cost = i64;

/// Routing delays (entries of the `D` and `D_C` matrices).
pub type Delay = i64;

/// Component sizes and partition capacities.
pub type Size = u64;

/// Sentinel for an absent timing constraint: `D_C = NO_CONSTRAINT` permits any
/// inter-partition delay.
pub const NO_CONSTRAINT: Delay = Delay::MAX;
