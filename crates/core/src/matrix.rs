//! A small row-major dense matrix used for the `B`, `D` and `P` matrices and
//! for dense materializations of `Q̂` in tests and worked examples.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A row-major dense matrix.
///
/// This is deliberately minimal: the paper's matrices are tiny (`M×M` with
/// `M ≤ 16` in the evaluation, `M·N ≤ a few thousand` for dense `Q̂` views in
/// tests), so no linear-algebra machinery is needed — only indexed storage
/// with dimension checking.
///
/// ```
/// use qbp_core::DenseMatrix;
///
/// let mut m = DenseMatrix::filled(2, 3, 0i64);
/// m[(1, 2)] = 7;
/// assert_eq!(m[(1, 2)], 7);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DenseMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Clone> DenseMatrix<T> {
    /// Creates a `rows × cols` matrix with every entry set to `fill`.
    pub fn filled(rows: usize, cols: usize, fill: T) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![fill; rows * cols],
        }
    }

    /// Creates a matrix from nested row vectors.
    ///
    /// Returns `None` if the rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Option<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        if rows.iter().any(|r| r.len() != ncols) {
            return None;
        }
        Some(DenseMatrix {
            rows: nrows,
            cols: ncols,
            data: rows.into_iter().flatten().collect(),
        })
    }

    /// Creates a square matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DenseMatrix { rows, cols, data }
    }
}

impl<T> DenseMatrix<T> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Checked access: `None` when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<&T> {
        if row < self.rows && col < self.cols {
            self.data.get(row * self.cols + col)
        } else {
            None
        }
    }

    /// Iterates over one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterates over all entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.data.iter()
    }

    /// Iterates over `(row, col, &value)` triples in row-major order.
    pub fn indexed_iter(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(k, v)| (k / cols, k % cols, v))
    }
}

impl DenseMatrix<crate::Cost> {
    /// Sum of absolute values of all entries, saturating on overflow.
    ///
    /// Used by the Theorem-1 penalty bound `U > 2·Σ|q|`.
    pub fn abs_sum(&self) -> crate::Cost {
        self.data
            .iter()
            .fold(0i64, |acc, &v| acc.saturating_add(v.saturating_abs()))
    }

    /// Maximum entry, or `0` for an empty matrix.
    pub fn max_entry(&self) -> crate::Cost {
        self.data.iter().copied().max().unwrap_or(0)
    }
}

impl<T> Index<(usize, usize)> for DenseMatrix<T> {
    type Output = T;

    fn index(&self, (row, col): (usize, usize)) -> &T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }
}

impl<T> IndexMut<(usize, usize)> for DenseMatrix<T> {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }
}

impl<T: fmt::Display> fmt::Display for DenseMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column-aligned, the way the paper prints its example Q̂ matrix.
        let strings: Vec<String> = self.data.iter().map(T::to_string).collect();
        let width = strings.iter().map(String::len).max().unwrap_or(1);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>width$}", strings[r * self.cols + c])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_index_roundtrip() {
        let mut m = DenseMatrix::filled(3, 4, 1i64);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        m[(2, 3)] = 9;
        assert_eq!(m[(2, 3)], 9);
        assert_eq!(m[(0, 0)], 1);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(DenseMatrix::from_rows(vec![vec![1, 2], vec![3]]).is_none());
        let m = DenseMatrix::from_rows(vec![vec![1, 2], vec![3, 4]]).unwrap();
        assert_eq!(m[(1, 0)], 3);
    }

    #[test]
    fn from_fn_lays_out_row_major() {
        let m = DenseMatrix::from_fn(2, 3, |r, c| (r * 10 + c) as i64);
        assert_eq!(m[(0, 2)], 2);
        assert_eq!(m[(1, 0)], 10);
        assert_eq!(m.row(1), &[10, 11, 12]);
    }

    #[test]
    fn get_is_checked() {
        let m = DenseMatrix::filled(2, 2, 0i64);
        assert!(m.get(1, 1).is_some());
        assert!(m.get(2, 0).is_none());
        assert!(m.get(0, 2).is_none());
    }

    #[test]
    fn abs_sum_and_max() {
        let m = DenseMatrix::from_rows(vec![vec![-3i64, 4], vec![0, -5]]).unwrap();
        assert_eq!(m.abs_sum(), 12);
        assert_eq!(m.max_entry(), 4);
    }

    #[test]
    fn abs_sum_saturates() {
        let m = DenseMatrix::from_rows(vec![vec![i64::MAX, i64::MAX]]).unwrap();
        assert_eq!(m.abs_sum(), i64::MAX);
    }

    #[test]
    fn display_aligns_columns() {
        let m = DenseMatrix::from_rows(vec![vec![1i64, 100], vec![22, 3]]).unwrap();
        let s = m.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    fn indexed_iter_covers_all_entries() {
        let m = DenseMatrix::from_fn(2, 2, |r, c| r + c);
        let entries: Vec<(usize, usize, usize)> =
            m.indexed_iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert_eq!(
            entries,
            vec![(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 2)]
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_panics_out_of_bounds() {
        let m = DenseMatrix::filled(2, 2, 0i64);
        let _ = m[(2, 2)];
    }
}
