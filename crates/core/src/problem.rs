//! The complete partitioning problem `PP(α, β)` and its builder.

use crate::{
    Assignment, Circuit, Cost, DenseMatrix, Error, PartitionTopology, TimingConstraints,
};
use serde::{Deserialize, Serialize};

/// A performance-driven partitioning problem `PP(α, β)`:
///
/// > minimize `α·Σ p[i][j]·x[i][j] + β·Σ a[j1][j2]·b[i1][i2]·x[i1][j1]·x[i2][j2]`
/// > subject to C1 (capacity), C2 (timing), C3 (one partition each).
///
/// Built via [`ProblemBuilder`], which validates that all the pieces agree on
/// dimensions. The linear term's `P` matrix is optional; when absent the
/// problem is a pure interconnect-cost minimization (`P = 0`).
///
/// Any `PP(α, β)` is equivalent to a `PP(1, 1)` on scaled matrices (§3); the
/// scale factors are retained here and applied on the fly by
/// [`Evaluator`](crate::Evaluator) and [`QMatrix`](crate::QMatrix), which is
/// equivalent and avoids copying.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    circuit: Circuit,
    topology: PartitionTopology,
    timing: TimingConstraints,
    linear_cost: Option<DenseMatrix<Cost>>,
    alpha: Cost,
    beta: Cost,
}

impl Problem {
    /// The circuit being partitioned.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The partition topology.
    pub fn topology(&self) -> &PartitionTopology {
        &self.topology
    }

    /// The sparse timing constraints `D_C`.
    pub fn timing(&self) -> &TimingConstraints {
        &self.timing
    }

    /// The linear cost matrix `P` (`M×N`), if any.
    pub fn linear_cost(&self) -> Option<&DenseMatrix<Cost>> {
        self.linear_cost.as_ref()
    }

    /// The entry `p[i][j]`, treating an absent `P` as all zeros.
    #[inline]
    pub fn p(&self, i: usize, j: usize) -> Cost {
        self.linear_cost.as_ref().map_or(0, |p| p[(i, j)])
    }

    /// Scale factor `α` of the linear term.
    pub fn alpha(&self) -> Cost {
        self.alpha
    }

    /// Scale factor `β` of the quadratic term.
    pub fn beta(&self) -> Cost {
        self.beta
    }

    /// Number of partitions `M`.
    pub fn m(&self) -> usize {
        self.topology.len()
    }

    /// Number of components `N`.
    pub fn n(&self) -> usize {
        self.circuit.len()
    }

    /// Returns a copy of this problem with `B` zeroed and the linear term
    /// dropped — the feasibility-search problem the paper uses to produce
    /// initial feasible solutions ("use QBP algorithm with matrix B set to
    /// all zeros").
    pub fn feasibility_problem(&self) -> Problem {
        Problem {
            circuit: self.circuit.clone(),
            topology: self.topology.zero_wire_cost(),
            timing: self.timing.clone(),
            linear_cost: None,
            alpha: 0,
            beta: 1,
        }
    }

    /// Returns a copy with the timing constraints removed (the paper's
    /// "without Timing Constraints" configuration, Table II).
    pub fn without_timing(&self) -> Problem {
        Problem {
            circuit: self.circuit.clone(),
            topology: self.topology.clone(),
            timing: TimingConstraints::new(self.circuit.len()),
            linear_cost: self.linear_cost.clone(),
            alpha: self.alpha,
            beta: self.beta,
        }
    }

    /// Returns a copy with different scale factors.
    ///
    /// # Errors
    ///
    /// Returns an error if either factor is negative.
    pub fn with_scales(&self, alpha: Cost, beta: Cost) -> Result<Problem, Error> {
        for (what, v) in [("alpha", alpha), ("beta", beta)] {
            if v < 0 {
                return Err(Error::NegativeValue { what, value: v });
            }
        }
        Ok(Problem {
            alpha,
            beta,
            ..self.clone()
        })
    }

    /// Checks an assignment vector has the right length and in-range
    /// partitions for this problem.
    ///
    /// # Errors
    ///
    /// Returns an error describing the first mismatch found.
    pub fn validate_assignment(&self, assignment: &Assignment) -> Result<(), Error> {
        if assignment.len() != self.n() {
            return Err(Error::AssignmentLengthMismatch {
                expected: self.n(),
                found: assignment.len(),
            });
        }
        assignment.validate(self.m())
    }
}

/// Builder for [`Problem`], validating dimensional consistency at `build`.
///
/// ```
/// use qbp_core::{Circuit, PartitionTopology, ProblemBuilder, TimingConstraints};
///
/// # fn main() -> Result<(), qbp_core::Error> {
/// let mut circuit = Circuit::new();
/// let a = circuit.add_component("a", 10);
/// let b = circuit.add_component("b", 20);
/// circuit.add_wires(a, b, 5)?;
///
/// let mut timing = TimingConstraints::new(2);
/// timing.add_symmetric(a, b, 1)?;
///
/// let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 50)?)
///     .timing(timing)
///     .scales(1, 1)
///     .build()?;
/// assert_eq!(problem.m(), 4);
/// assert_eq!(problem.n(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    circuit: Circuit,
    topology: PartitionTopology,
    timing: Option<TimingConstraints>,
    linear_cost: Option<DenseMatrix<Cost>>,
    alpha: Cost,
    beta: Cost,
}

impl ProblemBuilder {
    /// Starts building a problem over the given circuit and topology.
    pub fn new(circuit: Circuit, topology: PartitionTopology) -> Self {
        ProblemBuilder {
            circuit,
            topology,
            timing: None,
            linear_cost: None,
            alpha: 1,
            beta: 1,
        }
    }

    /// Sets the timing constraints (default: none).
    pub fn timing(mut self, timing: TimingConstraints) -> Self {
        self.timing = Some(timing);
        self
    }

    /// Sets the linear cost matrix `P` (`M×N`; default: zero).
    pub fn linear_cost(mut self, p: DenseMatrix<Cost>) -> Self {
        self.linear_cost = Some(p);
        self
    }

    /// Sets the scale factors `(α, β)` (default: `(1, 1)`).
    pub fn scales(mut self, alpha: Cost, beta: Cost) -> Self {
        self.alpha = alpha;
        self.beta = beta;
        self
    }

    /// Number of partitions in the topology being built (used by the text
    /// parser to size the linear-cost matrix before `build`).
    pub fn topology_len(&self) -> usize {
        self.topology.len()
    }

    /// Number of components in the circuit being built.
    pub fn circuit_len(&self) -> usize {
        self.circuit.len()
    }

    /// Validates and builds the problem.
    ///
    /// # Errors
    ///
    /// Returns an error when the circuit is empty, dimensions disagree, the
    /// scale factors or any `P` entry are negative, or the total component
    /// size exceeds the total capacity (no assignment could satisfy C1).
    pub fn build(self) -> Result<Problem, Error> {
        let n = self.circuit.len();
        let m = self.topology.len();
        if n == 0 {
            return Err(Error::EmptyCircuit);
        }
        let timing = self.timing.unwrap_or_else(|| TimingConstraints::new(n));
        if timing.component_count() != n {
            return Err(Error::DimensionMismatch {
                what: "timing constraints",
                expected: (n, n),
                found: (timing.component_count(), timing.component_count()),
            });
        }
        if let Some(p) = &self.linear_cost {
            if p.rows() != m || p.cols() != n {
                return Err(Error::DimensionMismatch {
                    what: "linear cost matrix P",
                    expected: (m, n),
                    found: (p.rows(), p.cols()),
                });
            }
            if let Some(&v) = p.iter().find(|&&v| v < 0) {
                return Err(Error::NegativeValue {
                    what: "linear cost",
                    value: v,
                });
            }
        }
        for (what, v) in [("alpha", self.alpha), ("beta", self.beta)] {
            if v < 0 {
                return Err(Error::NegativeValue { what, value: v });
            }
        }
        let total_size = self.circuit.total_size();
        let total_capacity = self.topology.total_capacity();
        if total_size > total_capacity {
            return Err(Error::CapacityImpossible {
                total_size,
                total_capacity,
            });
        }
        Ok(Problem {
            circuit: self.circuit,
            topology: self.topology,
            timing,
            linear_cost: self.linear_cost,
            alpha: self.alpha,
            beta: self.beta,
        })
    }
}

/// Builds the MCM/TCM *deviation* cost matrix of §2.2.1:
/// `p[i][j] = s_j · distance(i, A_initial(j))`, where the distance is the
/// topology's wire-cost matrix `B` (Manhattan distance for grid topologies).
///
/// Solving `PP(1, 0)` with this `P` finds the feasible assignment that
/// minimally deviates from an experienced designer's initial (possibly
/// violating) assignment.
///
/// # Errors
///
/// Returns an error if the assignment length does not match the circuit or
/// references a partition outside the topology.
pub fn deviation_cost_matrix(
    circuit: &Circuit,
    topology: &PartitionTopology,
    initial: &Assignment,
) -> Result<DenseMatrix<Cost>, Error> {
    if initial.len() != circuit.len() {
        return Err(Error::AssignmentLengthMismatch {
            expected: circuit.len(),
            found: initial.len(),
        });
    }
    initial.validate(topology.len())?;
    let m = topology.len();
    let n = circuit.len();
    let b = topology.wire_cost();
    let mut p = DenseMatrix::filled(m, n, 0);
    for j in 0..n {
        let size = circuit.size(crate::ComponentId::new(j)) as Cost;
        let home = initial.part_index(j);
        for i in 0..m {
            p[(i, j)] = size * b[(i, home)];
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComponentId;

    fn small_circuit() -> Circuit {
        let mut c = Circuit::new();
        let a = c.add_component("a", 10);
        let b = c.add_component("b", 20);
        let d = c.add_component("c", 15);
        c.add_wires(a, b, 5).unwrap();
        c.add_wires(b, d, 2).unwrap();
        c
    }

    #[test]
    fn builder_defaults() {
        let p = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 100).unwrap())
            .build()
            .unwrap();
        assert_eq!(p.m(), 4);
        assert_eq!(p.n(), 3);
        assert_eq!((p.alpha(), p.beta()), (1, 1));
        assert!(p.linear_cost().is_none());
        assert_eq!(p.p(3, 2), 0);
        assert!(p.timing().is_empty());
    }

    #[test]
    fn builder_rejects_empty_circuit() {
        let r = ProblemBuilder::new(Circuit::new(), PartitionTopology::grid(2, 2, 1).unwrap())
            .build();
        assert_eq!(r.unwrap_err(), Error::EmptyCircuit);
    }

    #[test]
    fn builder_rejects_capacity_impossible() {
        let r = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 10).unwrap())
            .build();
        assert!(matches!(r, Err(Error::CapacityImpossible { .. })));
    }

    #[test]
    fn builder_rejects_wrong_p_shape() {
        let p = DenseMatrix::filled(3, 3, 0);
        let r = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 100).unwrap())
            .linear_cost(p)
            .build();
        assert!(matches!(r, Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn builder_rejects_wrong_timing_size() {
        let r = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 100).unwrap())
            .timing(TimingConstraints::new(7))
            .build();
        assert!(matches!(r, Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn builder_rejects_negative_scales_and_p() {
        let topo = PartitionTopology::grid(2, 2, 100).unwrap();
        assert!(matches!(
            ProblemBuilder::new(small_circuit(), topo.clone())
                .scales(-1, 1)
                .build(),
            Err(Error::NegativeValue { .. })
        ));
        let mut p = DenseMatrix::filled(4, 3, 0);
        p[(0, 0)] = -2;
        assert!(matches!(
            ProblemBuilder::new(small_circuit(), topo).linear_cost(p).build(),
            Err(Error::NegativeValue { .. })
        ));
    }

    #[test]
    fn feasibility_problem_zeroes_b_keeps_timing() {
        let mut tc = TimingConstraints::new(3);
        tc.add(ComponentId::new(0), ComponentId::new(1), 1).unwrap();
        let p = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 100).unwrap())
            .timing(tc)
            .build()
            .unwrap();
        let f = p.feasibility_problem();
        assert_eq!(f.topology().wire_cost().max_entry(), 0);
        assert_eq!(f.timing().len(), 1);
        assert_eq!(f.alpha(), 0);
    }

    #[test]
    fn without_timing_drops_constraints() {
        let mut tc = TimingConstraints::new(3);
        tc.add(ComponentId::new(0), ComponentId::new(1), 1).unwrap();
        let p = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 100).unwrap())
            .timing(tc)
            .build()
            .unwrap();
        assert!(p.without_timing().timing().is_empty());
        assert_eq!(p.timing().len(), 1);
    }

    #[test]
    fn validate_assignment() {
        let p = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 100).unwrap())
            .build()
            .unwrap();
        let good = Assignment::from_parts(vec![0, 1, 3]).unwrap();
        assert!(p.validate_assignment(&good).is_ok());
        let short = Assignment::from_parts(vec![0, 1]).unwrap();
        assert!(matches!(
            p.validate_assignment(&short),
            Err(Error::AssignmentLengthMismatch { .. })
        ));
        let bad = Assignment::from_parts(vec![0, 1, 9]).unwrap();
        assert!(matches!(
            p.validate_assignment(&bad),
            Err(Error::PartitionOutOfRange { .. })
        ));
    }

    #[test]
    fn deviation_matrix_matches_definition() {
        let c = small_circuit();
        let topo = PartitionTopology::grid(2, 2, 100).unwrap();
        let initial = Assignment::from_parts(vec![0, 3, 1]).unwrap();
        let p = deviation_cost_matrix(&c, &topo, &initial).unwrap();
        // p[i][j] = s_j * manhattan(i, initial_j).
        assert_eq!(p[(0, 0)], 0); // already home
        assert_eq!(p[(3, 0)], 10 * 2); // size 10, distance 2
        assert_eq!(p[(0, 1)], 20 * 2);
        assert_eq!(p[(1, 2)], 0);
        assert_eq!(p[(2, 2)], 15 * 2);
    }

    #[test]
    fn deviation_matrix_validates_input() {
        let c = small_circuit();
        let topo = PartitionTopology::grid(2, 2, 100).unwrap();
        let bad_len = Assignment::from_parts(vec![0, 1]).unwrap();
        assert!(deviation_cost_matrix(&c, &topo, &bad_len).is_err());
        let bad_part = Assignment::from_parts(vec![0, 1, 8]).unwrap();
        assert!(deviation_cost_matrix(&c, &topo, &bad_part).is_err());
    }

    #[test]
    fn with_scales_validates() {
        let p = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 100).unwrap())
            .build()
            .unwrap();
        assert!(p.with_scales(2, 3).is_ok());
        assert!(p.with_scales(-1, 0).is_err());
    }
}
