//! The complete partitioning problem `PP(α, β)` and its builder.

use crate::{
    Assignment, Circuit, Cost, DenseMatrix, Error, PartitionTopology, TimingConstraints,
};
use serde::{Deserialize, Serialize};

/// A performance-driven partitioning problem `PP(α, β)`:
///
/// > minimize `α·Σ p[i][j]·x[i][j] + β·Σ a[j1][j2]·b[i1][i2]·x[i1][j1]·x[i2][j2]`
/// > subject to C1 (capacity), C2 (timing), C3 (one partition each).
///
/// Built via [`ProblemBuilder`], which validates that all the pieces agree on
/// dimensions. The linear term's `P` matrix is optional; when absent the
/// problem is a pure interconnect-cost minimization (`P = 0`).
///
/// Any `PP(α, β)` is equivalent to a `PP(1, 1)` on scaled matrices (§3); the
/// scale factors are retained here and applied on the fly by
/// [`Evaluator`](crate::Evaluator) and [`QMatrix`](crate::QMatrix), which is
/// equivalent and avoids copying.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    circuit: Circuit,
    topology: PartitionTopology,
    timing: TimingConstraints,
    linear_cost: Option<DenseMatrix<Cost>>,
    alpha: Cost,
    beta: Cost,
}

impl Problem {
    /// The circuit being partitioned.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The partition topology.
    pub fn topology(&self) -> &PartitionTopology {
        &self.topology
    }

    /// The sparse timing constraints `D_C`.
    pub fn timing(&self) -> &TimingConstraints {
        &self.timing
    }

    /// The linear cost matrix `P` (`M×N`), if any.
    pub fn linear_cost(&self) -> Option<&DenseMatrix<Cost>> {
        self.linear_cost.as_ref()
    }

    /// The entry `p[i][j]`, treating an absent `P` as all zeros.
    #[inline]
    pub fn p(&self, i: usize, j: usize) -> Cost {
        self.linear_cost.as_ref().map_or(0, |p| p[(i, j)])
    }

    /// Scale factor `α` of the linear term.
    pub fn alpha(&self) -> Cost {
        self.alpha
    }

    /// Scale factor `β` of the quadratic term.
    pub fn beta(&self) -> Cost {
        self.beta
    }

    /// Number of partitions `M`.
    pub fn m(&self) -> usize {
        self.topology.len()
    }

    /// Number of components `N`.
    pub fn n(&self) -> usize {
        self.circuit.len()
    }

    /// Returns a copy of this problem with `B` zeroed and the linear term
    /// dropped — the feasibility-search problem the paper uses to produce
    /// initial feasible solutions ("use QBP algorithm with matrix B set to
    /// all zeros").
    pub fn feasibility_problem(&self) -> Problem {
        Problem {
            circuit: self.circuit.clone(),
            topology: self.topology.zero_wire_cost(),
            timing: self.timing.clone(),
            linear_cost: None,
            alpha: 0,
            beta: 1,
        }
    }

    /// Returns a copy with the timing constraints removed (the paper's
    /// "without Timing Constraints" configuration, Table II).
    pub fn without_timing(&self) -> Problem {
        Problem {
            circuit: self.circuit.clone(),
            topology: self.topology.clone(),
            timing: TimingConstraints::new(self.circuit.len()),
            linear_cost: self.linear_cost.clone(),
            alpha: self.alpha,
            beta: self.beta,
        }
    }

    /// Returns a copy with different scale factors.
    ///
    /// # Errors
    ///
    /// Returns an error if either factor is negative.
    pub fn with_scales(&self, alpha: Cost, beta: Cost) -> Result<Problem, Error> {
        for (what, v) in [("alpha", alpha), ("beta", beta)] {
            if v < 0 {
                return Err(Error::NegativeValue { what, value: v });
            }
        }
        Ok(Problem {
            alpha,
            beta,
            ..self.clone()
        })
    }

    // ------------------------------------------------------------------
    // Audited ECO mutation entry points.
    //
    // These are the only ways to change a `Problem` after construction;
    // each preserves every invariant `ProblemBuilder::build` establishes
    // (dimensional agreement, non-negative weights, total size within total
    // capacity), so downstream incremental state (`QBody` patches,
    // `PartitionProfile` patches) can trust the problem it re-derives rows
    // from. Higher-level delta application lives in the `qbp-eco` crate.
    // ------------------------------------------------------------------

    /// Appends a new component, growing the timing-constraint dimension and
    /// (when a linear cost `P` is present) appending a zero cost column.
    /// Returns the new component's id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CapacityImpossible`] when the enlarged total size
    /// exceeds the total capacity (the problem would have no feasible
    /// assignment); the problem is left unchanged in that case.
    pub fn add_component(
        &mut self,
        name: impl Into<String>,
        size: crate::Size,
    ) -> Result<crate::ComponentId, Error> {
        let total_size = self.circuit.total_size() + size;
        let total_capacity = self.topology.total_capacity();
        if total_size > total_capacity {
            return Err(Error::CapacityImpossible {
                total_size,
                total_capacity,
            });
        }
        let id = self.circuit.add_component(name, size);
        self.timing.grow(self.circuit.len());
        if let Some(p) = self.linear_cost.take() {
            let m = p.rows();
            let n = p.cols();
            let grown = DenseMatrix::from_fn(m, n + 1, |i, j| if j < n { p[(i, j)] } else { 0 });
            self.linear_cost = Some(grown);
        }
        Ok(id)
    }

    /// Overwrites the symmetric connection weight of a pair
    /// (`a[a][b] = a[b][a] = weight`; 0 removes). Returns the previous
    /// `(a→b, b→a)` weights.
    ///
    /// # Errors
    ///
    /// Returns an error if either id is out of range, `a == b`, or the
    /// weight is negative.
    pub fn set_pair_weight(
        &mut self,
        a: crate::ComponentId,
        b: crate::ComponentId,
        weight: Cost,
    ) -> Result<(Cost, Cost), Error> {
        self.circuit.set_wires(a, b, weight)
    }

    /// Overwrites the symmetric timing bound on a pair (`None` removes; a
    /// bound of [`crate::NO_CONSTRAINT`] also removes). Returns the previous
    /// `(a→b, b→a)` bounds.
    ///
    /// # Errors
    ///
    /// Returns an error if either id is out of range, `a == b`, or the bound
    /// is negative.
    pub fn set_timing_bound(
        &mut self,
        a: crate::ComponentId,
        b: crate::ComponentId,
        bound: Option<crate::Delay>,
    ) -> Result<(Option<crate::Delay>, Option<crate::Delay>), Error> {
        let limit = bound.unwrap_or(crate::NO_CONSTRAINT);
        let ab = self.timing.set(a, b, limit)?;
        let ba = self.timing.set(b, a, limit)?;
        Ok((ab, ba))
    }

    /// Detaches a component: removes every connection and timing constraint
    /// incident to it, leaving an isolated zero-degree component so ids stay
    /// stable (the ECO semantics of "remove component"). Returns the number
    /// of directed connection records and constraints removed.
    ///
    /// # Errors
    ///
    /// Returns an error if `j` is out of range.
    pub fn detach_component(&mut self, j: crate::ComponentId) -> Result<(usize, usize), Error> {
        let edges = self.circuit.detach_component(j)?;
        let constraints = self.timing.detach(j)?;
        Ok((edges, constraints))
    }

    /// Tightens every timing bound by `delta` (clamping at 0): the global
    /// "cycle time shrank" edit. Returns the number of constraints changed.
    ///
    /// # Errors
    ///
    /// Returns an error if `delta` is negative.
    pub fn tighten_cycle_time(&mut self, delta: crate::Delay) -> Result<usize, Error> {
        self.timing.tighten_all(delta)
    }

    /// Checks an assignment vector has the right length and in-range
    /// partitions for this problem.
    ///
    /// # Errors
    ///
    /// Returns an error describing the first mismatch found.
    pub fn validate_assignment(&self, assignment: &Assignment) -> Result<(), Error> {
        if assignment.len() != self.n() {
            return Err(Error::AssignmentLengthMismatch {
                expected: self.n(),
                found: assignment.len(),
            });
        }
        assignment.validate(self.m())
    }
}

/// Builder for [`Problem`], validating dimensional consistency at `build`.
///
/// ```
/// use qbp_core::{Circuit, PartitionTopology, ProblemBuilder, TimingConstraints};
///
/// # fn main() -> Result<(), qbp_core::Error> {
/// let mut circuit = Circuit::new();
/// let a = circuit.add_component("a", 10);
/// let b = circuit.add_component("b", 20);
/// circuit.add_wires(a, b, 5)?;
///
/// let mut timing = TimingConstraints::new(2);
/// timing.add_symmetric(a, b, 1)?;
///
/// let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 50)?)
///     .timing(timing)
///     .scales(1, 1)
///     .build()?;
/// assert_eq!(problem.m(), 4);
/// assert_eq!(problem.n(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    circuit: Circuit,
    topology: PartitionTopology,
    timing: Option<TimingConstraints>,
    linear_cost: Option<DenseMatrix<Cost>>,
    alpha: Cost,
    beta: Cost,
    /// Name-referenced fluent edits, resolved (and validated) at `build`.
    pending: Vec<FluentOp>,
}

/// One deferred fluent-builder edit (names resolve at `build`).
#[derive(Debug, Clone)]
enum FluentOp {
    Pair(String, String, Cost),
    TimingBound(String, String, crate::Delay),
}

impl ProblemBuilder {
    /// Starts building a problem over the given circuit and topology.
    pub fn new(circuit: Circuit, topology: PartitionTopology) -> Self {
        ProblemBuilder {
            circuit,
            topology,
            timing: None,
            linear_cost: None,
            alpha: 1,
            beta: 1,
            pending: Vec::new(),
        }
    }

    /// Starts a *fluent* build over an empty circuit: declare components,
    /// pairs and timing bounds by name and let `build` resolve and validate
    /// everything, instead of hand-assembling a [`Circuit`] and
    /// [`TimingConstraints`] first.
    ///
    /// ```
    /// use qbp_core::{PartitionTopology, ProblemBuilder};
    ///
    /// # fn main() -> Result<(), qbp_core::Error> {
    /// let problem = ProblemBuilder::on(PartitionTopology::grid(2, 2, 100)?)
    ///     .component("alu", 40)
    ///     .component("cache", 30)
    ///     .pair("alu", "cache", 5)
    ///     .timing_bound("alu", "cache", 1)
    ///     .build()?;
    /// assert_eq!(problem.n(), 2);
    /// assert_eq!(problem.timing().len(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn on(topology: PartitionTopology) -> Self {
        ProblemBuilder::new(Circuit::new(), topology)
    }

    /// Fluent shorthand for [`ProblemBuilder::on`] with `m` identical
    /// partitions of the given capacity in a row (zero inter-partition
    /// structure beyond the 1×m grid).
    ///
    /// # Errors
    ///
    /// Returns an error when `m` is 0 (an empty topology).
    pub fn uniform(m: usize, capacity: crate::Size) -> Result<Self, Error> {
        Ok(ProblemBuilder::on(PartitionTopology::grid(1, m, capacity)?))
    }

    /// Declares a component (fluent form of [`Circuit::add_component`]).
    pub fn component(mut self, name: impl Into<String>, size: crate::Size) -> Self {
        self.circuit.add_component(name, size);
        self
    }

    /// Declares `weight` wires between two named components in both
    /// directions (fluent form of [`Circuit::add_wires`]; resolved and
    /// validated at `build`).
    pub fn pair(mut self, a: impl Into<String>, b: impl Into<String>, weight: Cost) -> Self {
        self.pending.push(FluentOp::Pair(a.into(), b.into(), weight));
        self
    }

    /// Declares a symmetric timing bound between two named components
    /// (fluent form of [`TimingConstraints::add_symmetric`]; resolved and
    /// validated at `build`).
    pub fn timing_bound(
        mut self,
        a: impl Into<String>,
        b: impl Into<String>,
        max_delay: crate::Delay,
    ) -> Self {
        self.pending
            .push(FluentOp::TimingBound(a.into(), b.into(), max_delay));
        self
    }

    /// Sets the timing constraints (default: none).
    pub fn timing(mut self, timing: TimingConstraints) -> Self {
        self.timing = Some(timing);
        self
    }

    /// Sets the linear cost matrix `P` (`M×N`; default: zero).
    pub fn linear_cost(mut self, p: DenseMatrix<Cost>) -> Self {
        self.linear_cost = Some(p);
        self
    }

    /// Sets the scale factors `(α, β)` (default: `(1, 1)`).
    pub fn scales(mut self, alpha: Cost, beta: Cost) -> Self {
        self.alpha = alpha;
        self.beta = beta;
        self
    }

    /// Number of partitions in the topology being built (used by the text
    /// parser to size the linear-cost matrix before `build`).
    pub fn topology_len(&self) -> usize {
        self.topology.len()
    }

    /// Number of components in the circuit being built.
    pub fn circuit_len(&self) -> usize {
        self.circuit.len()
    }

    /// Validates and builds the problem.
    ///
    /// # Errors
    ///
    /// Returns an error when the circuit is empty, dimensions disagree, the
    /// scale factors or any `P` entry are negative, or the total component
    /// size exceeds the total capacity (no assignment could satisfy C1).
    pub fn build(mut self) -> Result<Problem, Error> {
        let n = self.circuit.len();
        let m = self.topology.len();
        if n == 0 {
            return Err(Error::EmptyCircuit);
        }
        let mut timing = self.timing.unwrap_or_else(|| TimingConstraints::new(n));
        if !self.pending.is_empty() {
            let names: std::collections::HashMap<String, crate::ComponentId> = self
                .circuit
                .iter()
                .map(|(id, c)| (c.name().to_string(), id))
                .collect();
            let resolve = |name: &str| {
                names
                    .get(name)
                    .copied()
                    .ok_or_else(|| Error::UnknownComponentName(name.to_string()))
            };
            for op in std::mem::take(&mut self.pending) {
                match op {
                    FluentOp::Pair(a, b, w) => {
                        self.circuit.add_wires(resolve(&a)?, resolve(&b)?, w)?;
                    }
                    FluentOp::TimingBound(a, b, dc) => {
                        timing.add_symmetric(resolve(&a)?, resolve(&b)?, dc)?;
                    }
                }
            }
        }
        let timing = timing;
        if timing.component_count() != n {
            return Err(Error::DimensionMismatch {
                what: "timing constraints",
                expected: (n, n),
                found: (timing.component_count(), timing.component_count()),
            });
        }
        if let Some(p) = &self.linear_cost {
            if p.rows() != m || p.cols() != n {
                return Err(Error::DimensionMismatch {
                    what: "linear cost matrix P",
                    expected: (m, n),
                    found: (p.rows(), p.cols()),
                });
            }
            if let Some(&v) = p.iter().find(|&&v| v < 0) {
                return Err(Error::NegativeValue {
                    what: "linear cost",
                    value: v,
                });
            }
        }
        for (what, v) in [("alpha", self.alpha), ("beta", self.beta)] {
            if v < 0 {
                return Err(Error::NegativeValue { what, value: v });
            }
        }
        let total_size = self.circuit.total_size();
        let total_capacity = self.topology.total_capacity();
        if total_size > total_capacity {
            return Err(Error::CapacityImpossible {
                total_size,
                total_capacity,
            });
        }
        Ok(Problem {
            circuit: self.circuit,
            topology: self.topology,
            timing,
            linear_cost: self.linear_cost,
            alpha: self.alpha,
            beta: self.beta,
        })
    }
}

/// Builds the MCM/TCM *deviation* cost matrix of §2.2.1:
/// `p[i][j] = s_j · distance(i, A_initial(j))`, where the distance is the
/// topology's wire-cost matrix `B` (Manhattan distance for grid topologies).
///
/// Solving `PP(1, 0)` with this `P` finds the feasible assignment that
/// minimally deviates from an experienced designer's initial (possibly
/// violating) assignment.
///
/// # Errors
///
/// Returns an error if the assignment length does not match the circuit or
/// references a partition outside the topology.
pub fn deviation_cost_matrix(
    circuit: &Circuit,
    topology: &PartitionTopology,
    initial: &Assignment,
) -> Result<DenseMatrix<Cost>, Error> {
    if initial.len() != circuit.len() {
        return Err(Error::AssignmentLengthMismatch {
            expected: circuit.len(),
            found: initial.len(),
        });
    }
    initial.validate(topology.len())?;
    let m = topology.len();
    let n = circuit.len();
    let b = topology.wire_cost();
    let mut p = DenseMatrix::filled(m, n, 0);
    for j in 0..n {
        let size = circuit.size(crate::ComponentId::new(j)) as Cost;
        let home = initial.part_index(j);
        for i in 0..m {
            p[(i, j)] = size * b[(i, home)];
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComponentId;

    fn small_circuit() -> Circuit {
        let mut c = Circuit::new();
        let a = c.add_component("a", 10);
        let b = c.add_component("b", 20);
        let d = c.add_component("c", 15);
        c.add_wires(a, b, 5).unwrap();
        c.add_wires(b, d, 2).unwrap();
        c
    }

    // Ported to the fluent constructor: same structure and assertions as the
    // historical hand-assembled version, built by name instead.
    #[test]
    fn builder_defaults() {
        let p = ProblemBuilder::on(PartitionTopology::grid(2, 2, 100).unwrap())
            .component("a", 10)
            .component("b", 20)
            .component("c", 15)
            .pair("a", "b", 5)
            .pair("b", "c", 2)
            .build()
            .unwrap();
        assert_eq!(p.m(), 4);
        assert_eq!(p.n(), 3);
        assert_eq!((p.alpha(), p.beta()), (1, 1));
        assert!(p.linear_cost().is_none());
        assert_eq!(p.p(3, 2), 0);
        assert!(p.timing().is_empty());
        // The fluent build is the same problem the hand-assembled path makes.
        let hand = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 100).unwrap())
            .build()
            .unwrap();
        assert_eq!(p, hand);
    }

    #[test]
    fn builder_rejects_empty_circuit() {
        let r = ProblemBuilder::new(Circuit::new(), PartitionTopology::grid(2, 2, 1).unwrap())
            .build();
        assert_eq!(r.unwrap_err(), Error::EmptyCircuit);
    }

    // Ported to the fluent constructor (was hand-assembled via small_circuit).
    #[test]
    fn builder_rejects_capacity_impossible() {
        let r = ProblemBuilder::on(PartitionTopology::grid(2, 2, 10).unwrap())
            .component("a", 10)
            .component("b", 20)
            .component("c", 15)
            .pair("a", "b", 5)
            .build();
        assert!(matches!(r, Err(Error::CapacityImpossible { .. })));
    }

    #[test]
    fn fluent_builder_resolves_names_and_bounds() {
        let p = ProblemBuilder::uniform(3, 50)
            .unwrap()
            .component("x", 10)
            .component("y", 20)
            .pair("x", "y", 4)
            .timing_bound("x", "y", 1)
            .build()
            .unwrap();
        assert_eq!(p.m(), 3);
        let (x, y) = (ComponentId::new(0), ComponentId::new(1));
        assert_eq!(p.circuit().connection(x, y), 4);
        assert_eq!(p.circuit().connection(y, x), 4);
        assert_eq!(p.timing().get(x, y), Some(1));
        assert_eq!(p.timing().get(y, x), Some(1));
    }

    #[test]
    fn fluent_builder_rejects_unknown_names() {
        let r = ProblemBuilder::uniform(2, 50)
            .unwrap()
            .component("x", 1)
            .pair("x", "ghost", 1)
            .build();
        assert_eq!(r.unwrap_err(), Error::UnknownComponentName("ghost".into()));
        let r = ProblemBuilder::uniform(2, 50)
            .unwrap()
            .component("x", 1)
            .component("y", 1)
            .timing_bound("phantom", "y", 2)
            .build();
        assert!(matches!(r, Err(Error::UnknownComponentName(_))));
    }

    #[test]
    fn mutation_entry_points_preserve_invariants() {
        let mut p = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 100).unwrap())
            .build()
            .unwrap();
        let (a, b) = (ComponentId::new(0), ComponentId::new(1));
        // Pair weight overwrite, both directions.
        assert_eq!(p.set_pair_weight(a, b, 9).unwrap(), (5, 5));
        assert_eq!(p.circuit().connection(a, b), 9);
        assert_eq!(p.circuit().connection(b, a), 9);
        // Timing bound set / remove.
        assert_eq!(p.set_timing_bound(a, b, Some(3)).unwrap(), (None, None));
        assert_eq!(p.timing().len(), 2);
        assert_eq!(
            p.set_timing_bound(a, b, None).unwrap(),
            (Some(3), Some(3))
        );
        assert!(p.timing().is_empty());
        // Component append grows timing and respects capacity.
        let id = p.add_component("late", 7).unwrap();
        assert_eq!(id.index(), 3);
        assert_eq!(p.n(), 4);
        assert_eq!(p.timing().component_count(), 4);
        assert!(matches!(
            p.add_component("whale", 100_000),
            Err(Error::CapacityImpossible { .. })
        ));
        assert_eq!(p.n(), 4, "failed add must leave the problem unchanged");
        // Detach keeps ids stable.
        let (edges, _) = p.detach_component(b).unwrap();
        assert_eq!(edges, 4);
        assert_eq!(p.n(), 4);
        // Cycle-time tightening clamps at zero.
        p.set_timing_bound(a, id, Some(2)).unwrap();
        assert_eq!(p.tighten_cycle_time(1).unwrap(), 2);
        assert_eq!(p.timing().get(a, id), Some(1));
    }

    #[test]
    fn add_component_grows_linear_cost_with_zero_column() {
        let c = small_circuit();
        let topo = PartitionTopology::grid(2, 2, 100).unwrap();
        let initial = Assignment::from_parts(vec![0, 3, 1]).unwrap();
        let pmat = deviation_cost_matrix(&c, &topo, &initial).unwrap();
        let mut p = ProblemBuilder::new(c, topo).linear_cost(pmat).build().unwrap();
        p.add_component("late", 1).unwrap();
        let lc = p.linear_cost().unwrap();
        assert_eq!((lc.rows(), lc.cols()), (4, 4));
        for i in 0..4 {
            assert_eq!(p.p(i, 3), 0);
        }
        // Pre-existing entries survive untouched.
        assert_eq!(p.p(3, 0), 10 * 2);
    }

    #[test]
    fn builder_rejects_wrong_p_shape() {
        let p = DenseMatrix::filled(3, 3, 0);
        let r = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 100).unwrap())
            .linear_cost(p)
            .build();
        assert!(matches!(r, Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn builder_rejects_wrong_timing_size() {
        let r = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 100).unwrap())
            .timing(TimingConstraints::new(7))
            .build();
        assert!(matches!(r, Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn builder_rejects_negative_scales_and_p() {
        let topo = PartitionTopology::grid(2, 2, 100).unwrap();
        assert!(matches!(
            ProblemBuilder::new(small_circuit(), topo.clone())
                .scales(-1, 1)
                .build(),
            Err(Error::NegativeValue { .. })
        ));
        let mut p = DenseMatrix::filled(4, 3, 0);
        p[(0, 0)] = -2;
        assert!(matches!(
            ProblemBuilder::new(small_circuit(), topo).linear_cost(p).build(),
            Err(Error::NegativeValue { .. })
        ));
    }

    #[test]
    fn feasibility_problem_zeroes_b_keeps_timing() {
        let mut tc = TimingConstraints::new(3);
        tc.add(ComponentId::new(0), ComponentId::new(1), 1).unwrap();
        let p = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 100).unwrap())
            .timing(tc)
            .build()
            .unwrap();
        let f = p.feasibility_problem();
        assert_eq!(f.topology().wire_cost().max_entry(), 0);
        assert_eq!(f.timing().len(), 1);
        assert_eq!(f.alpha(), 0);
    }

    #[test]
    fn without_timing_drops_constraints() {
        let mut tc = TimingConstraints::new(3);
        tc.add(ComponentId::new(0), ComponentId::new(1), 1).unwrap();
        let p = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 100).unwrap())
            .timing(tc)
            .build()
            .unwrap();
        assert!(p.without_timing().timing().is_empty());
        assert_eq!(p.timing().len(), 1);
    }

    #[test]
    fn validate_assignment() {
        let p = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 100).unwrap())
            .build()
            .unwrap();
        let good = Assignment::from_parts(vec![0, 1, 3]).unwrap();
        assert!(p.validate_assignment(&good).is_ok());
        let short = Assignment::from_parts(vec![0, 1]).unwrap();
        assert!(matches!(
            p.validate_assignment(&short),
            Err(Error::AssignmentLengthMismatch { .. })
        ));
        let bad = Assignment::from_parts(vec![0, 1, 9]).unwrap();
        assert!(matches!(
            p.validate_assignment(&bad),
            Err(Error::PartitionOutOfRange { .. })
        ));
    }

    #[test]
    fn deviation_matrix_matches_definition() {
        let c = small_circuit();
        let topo = PartitionTopology::grid(2, 2, 100).unwrap();
        let initial = Assignment::from_parts(vec![0, 3, 1]).unwrap();
        let p = deviation_cost_matrix(&c, &topo, &initial).unwrap();
        // p[i][j] = s_j * manhattan(i, initial_j).
        assert_eq!(p[(0, 0)], 0); // already home
        assert_eq!(p[(3, 0)], 10 * 2); // size 10, distance 2
        assert_eq!(p[(0, 1)], 20 * 2);
        assert_eq!(p[(1, 2)], 0);
        assert_eq!(p[(2, 2)], 15 * 2);
    }

    #[test]
    fn deviation_matrix_validates_input() {
        let c = small_circuit();
        let topo = PartitionTopology::grid(2, 2, 100).unwrap();
        let bad_len = Assignment::from_parts(vec![0, 1]).unwrap();
        assert!(deviation_cost_matrix(&c, &topo, &bad_len).is_err());
        let bad_part = Assignment::from_parts(vec![0, 1, 8]).unwrap();
        assert!(deviation_cost_matrix(&c, &topo, &bad_part).is_err());
    }

    #[test]
    fn with_scales_validates() {
        let p = ProblemBuilder::new(small_circuit(), PartitionTopology::grid(2, 2, 100).unwrap())
            .build()
            .unwrap();
        assert!(p.with_scales(2, 3).is_ok());
        assert!(p.with_scales(-1, 0).is_err());
    }
}
