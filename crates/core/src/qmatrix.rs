//! The implicit, timing-embedded cost matrix `Q̂` of the Quadratic Boolean
//! Program, and the sparse linear-algebra kernels (`yᵀQ̂y`, `η`, `ω`) used by
//! the generalized Burkard heuristic.
//!
//! Following §3 of the paper, the partitioning objective is flattened into
//! `yᵀQy` with
//!
//! ```text
//! q[r1][r2] = β·a[j1][j2]·b[i1][i2] + α·p'[r1][r2]      (p' only on the diagonal)
//! ```
//!
//! and the timing constraints C2 are *embedded* by overwriting every entry
//! whose candidate pair of assignments violates timing — i.e.
//! `D(i1,i2) > D_C(j1,j2)` — with a penalty (Theorem 1 uses a provably
//! sufficient `U`; Theorem 2 justifies any penalty provided the returned
//! minimizer is verified timing-feasible, which is how the paper runs with a
//! fixed penalty of 50).
//!
//! `Q̂` is never materialized by solvers (§4.3): this type stores only merged
//! per-component lists of *interesting* partners (connected or constrained)
//! and computes entries, `yᵀQ̂y`, `η` and `ω` by walking them.

use crate::{
    Assignment, ComponentId, Cost, Delay, DenseMatrix, Error, PairIndex, PartitionId,
    PartitionProfile, Problem, NO_CONSTRAINT,
};

/// Default fixed penalty, matching the paper's experiments ("we set
/// `q̂ = 50` for those candidate assignments in which Timing Constraints are
/// violated").
pub const PAPER_PENALTY: Cost = 50;

/// One merged "interesting partner" record: the partner component, the
/// connection weight `a` (0 when only a constraint exists), and the timing
/// limit ([`NO_CONSTRAINT`] when only a connection exists). Used only during
/// construction (and by the nested-layout benchmark baseline); the kernels
/// walk the flattened [`Csr`] form.
#[derive(Debug, Clone, Copy)]
struct Pair {
    other: u32,
    weight: Cost,
    limit: Delay,
}

/// Flat CSR adjacency: per-component merged pair records in one contiguous
/// struct-of-arrays block (`other` / `weight` / `limit`), with the
/// unconstrained records (`limit == NO_CONSTRAINT`) packed *first* within
/// each row so the pure-connection prefix is walked without touching
/// `limit` at all. `split[j]` is the absolute index where row `j`'s
/// timing-constrained suffix begins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Csr {
    /// Row start offsets, length `n + 1`.
    pub(crate) off: Vec<u32>,
    /// Absolute start of row `j`'s constrained suffix (`off[j] ≤ split[j] ≤
    /// off[j+1]`).
    pub(crate) split: Vec<u32>,
    /// Partner component per record.
    pub(crate) other: Vec<u32>,
    /// Connection weight per record (0 for pure constraints).
    pub(crate) weight: Vec<Cost>,
    /// Timing limit per record ([`NO_CONSTRAINT`] across the prefix).
    pub(crate) limit: Vec<Delay>,
}

impl Csr {
    fn from_rows(rows: &[Vec<Pair>]) -> Csr {
        let total: usize = rows.iter().map(Vec::len).sum();
        let mut csr = Csr {
            off: Vec::with_capacity(rows.len() + 1),
            split: Vec::with_capacity(rows.len()),
            other: Vec::with_capacity(total),
            weight: Vec::with_capacity(total),
            limit: Vec::with_capacity(total),
        };
        csr.off.push(0);
        for row in rows {
            for p in row.iter().filter(|p| p.limit == NO_CONSTRAINT) {
                csr.other.push(p.other);
                csr.weight.push(p.weight);
                csr.limit.push(p.limit);
            }
            csr.split.push(csr.other.len() as u32);
            for p in row.iter().filter(|p| p.limit != NO_CONSTRAINT) {
                csr.other.push(p.other);
                csr.weight.push(p.weight);
                csr.limit.push(p.limit);
            }
            csr.off.push(csr.other.len() as u32);
        }
        csr
    }

    /// Splices row `j` to hold exactly `row`, repacking the unconstrained
    /// prefix / constrained suffix split and shifting all following offsets.
    /// `O(row + n + tail records)` — the tail memmove is sequential and in
    /// practice far cheaper than a full [`Csr::from_rows`] rebuild.
    fn replace_row(&mut self, j: usize, row: &[Pair]) {
        let (lo, _, hi) = self.bounds(j);
        let uncon = row.iter().filter(|p| p.limit == NO_CONSTRAINT);
        let con = row.iter().filter(|p| p.limit != NO_CONSTRAINT);
        let ordered: Vec<&Pair> = uncon.chain(con).collect();
        let n_uncon = row.iter().filter(|p| p.limit == NO_CONSTRAINT).count();
        self.other.splice(lo..hi, ordered.iter().map(|p| p.other));
        self.weight.splice(lo..hi, ordered.iter().map(|p| p.weight));
        self.limit.splice(lo..hi, ordered.iter().map(|p| p.limit));
        let delta = row.len() as i64 - (hi - lo) as i64;
        self.split[j] = (lo + n_uncon) as u32;
        for s in &mut self.split[j + 1..] {
            *s = (*s as i64 + delta) as u32;
        }
        for o in &mut self.off[j + 1..] {
            *o = (*o as i64 + delta) as u32;
        }
    }

    #[inline]
    fn bounds(&self, j: usize) -> (usize, usize, usize) {
        (
            self.off[j] as usize,
            self.split[j] as usize,
            self.off[j + 1] as usize,
        )
    }

    /// The pure-connection prefix of row `j`: `(partner, weight)`.
    #[inline]
    pub(crate) fn unconstrained(&self, j: usize) -> impl Iterator<Item = (usize, Cost)> + '_ {
        let (lo, mid, _) = self.bounds(j);
        self.other[lo..mid]
            .iter()
            .zip(&self.weight[lo..mid])
            .map(|(&o, &w)| (o as usize, w))
    }

    /// The timing-constrained suffix of row `j`:
    /// `(record index, partner, weight, limit)`. The record index addresses
    /// parallel per-record side tables (e.g. limit classes).
    #[inline]
    pub(crate) fn constrained(
        &self,
        j: usize,
    ) -> impl Iterator<Item = (usize, usize, Cost, Delay)> + '_ {
        let (_, mid, hi) = self.bounds(j);
        (mid..hi).map(move |e| {
            (
                e,
                self.other[e] as usize,
                self.weight[e],
                self.limit[e],
            )
        })
    }

    /// Every record of row `j`: `(partner, weight, limit)`.
    #[inline]
    pub(crate) fn all(&self, j: usize) -> impl Iterator<Item = (usize, Cost, Delay)> + '_ {
        let (lo, _, hi) = self.bounds(j);
        self.other[lo..hi]
            .iter()
            .zip(&self.weight[lo..hi])
            .zip(&self.limit[lo..hi])
            .map(|((&o, &w), &l)| (o as usize, w, l))
    }

    /// Bytes of heap owned by the CSR tables (capacity, not length), for the
    /// allocation audit in `perf_snapshot`.
    pub(crate) fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.off.capacity() * size_of::<u32>()
            + self.split.capacity() * size_of::<u32>()
            + self.other.capacity() * size_of::<u32>()
            + self.weight.capacity() * size_of::<Cost>()
            + self.limit.capacity() * size_of::<Delay>()
    }
}

/// Streaming CSR assembler with checked `u32` offsets: rows are appended one
/// at a time from a caller-owned scratch buffer and the running record total
/// is validated against the index ceiling, so million-component builds never
/// materialize the nested per-row pair lists and can never silently wrap the
/// compact offsets past `u32::MAX`.
struct CsrStream {
    csr: Csr,
    cap: u64,
    what: &'static str,
}

impl CsrStream {
    fn with_capacity(n: usize, records: usize, cap: u64, what: &'static str) -> CsrStream {
        let mut csr = Csr {
            off: Vec::with_capacity(n + 1),
            split: Vec::with_capacity(n),
            other: Vec::with_capacity(records),
            weight: Vec::with_capacity(records),
            limit: Vec::with_capacity(records),
        };
        csr.off.push(0);
        CsrStream { csr, cap, what }
    }

    /// Appends one merged row, repacking into the unconstrained-prefix /
    /// constrained-suffix layout of [`Csr::from_rows`].
    fn push_row(&mut self, row: &[Pair]) -> Result<(), Error> {
        let total = self.csr.other.len() as u64 + row.len() as u64;
        if total > self.cap {
            return Err(Error::IndexOverflow {
                what: self.what,
                records: total,
                cap: self.cap,
            });
        }
        for p in row.iter().filter(|p| p.limit == NO_CONSTRAINT) {
            self.csr.other.push(p.other);
            self.csr.weight.push(p.weight);
            self.csr.limit.push(p.limit);
        }
        self.csr.split.push(self.csr.other.len() as u32);
        for p in row.iter().filter(|p| p.limit != NO_CONSTRAINT) {
            self.csr.other.push(p.other);
            self.csr.weight.push(p.weight);
            self.csr.limit.push(p.limit);
        }
        self.csr.off.push(self.csr.other.len() as u32);
        Ok(())
    }

    fn finish(self) -> Csr {
        self.csr
    }
}

/// Sentinel limit class for records outside the class tables (unconstrained
/// records, or constrained ones past [`MAX_LIMIT_CLASSES`]).
pub(crate) const NO_CLASS: u16 = u16::MAX;

/// Cap on distinct-limit classes; pathological instances with more distinct
/// limits fall back to the explicit per-record walk for the overflow.
const MAX_LIMIT_CLASSES: usize = 256;

/// Per-(limit class, source partition) violation structure: for class `c`
/// (limit `limits[c]`) and a constrained in-record whose source sits in
/// partition `p`, the candidate target partitions `i` split into a violating
/// set (`d[p][i] > limits[c]`, the entry is `penalty`) and a satisfying set
/// (the entry is the base interconnect term). Because the split depends only
/// on `(c, p)`, the smaller of the two sets is precomputed once — indices
/// *and* their wire costs `b[p][i]`, flat and contiguous — and shared by
/// every record of the class: the η kernel then touches
/// `min(|viol|, |sat|)` entries per cell with a sequential patch-table scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TimingClasses {
    m: usize,
    /// Sorted distinct limits, at most [`MAX_LIMIT_CLASSES`] of them.
    limits: Vec<Delay>,
    /// `folded[c·M + p]`: `|viol| ≤ |sat|`, i.e. the record's weight is
    /// folded into the per-partition base aggregate and only the violating
    /// entries are patched (otherwise the penalty is applied row-wide and
    /// only the satisfying entries are patched).
    folded: Vec<bool>,
    /// Patch table: entries `patch_off[c·M + p]..patch_off[c·M + p + 1]` of
    /// the parallel arrays list the patched target partitions — the
    /// violating set when folded, the satisfying set otherwise — with each
    /// index's wire cost `b[p][i]` inlined so the kernel's hot loop reads
    /// sequentially instead of chasing `b` rows.
    patch_off: Vec<u32>,
    patch_idx: Vec<u16>,
    patch_b: Vec<Cost>,
}

impl TimingClasses {
    fn build(problem: &Problem, out: &Csr) -> TimingClasses {
        let m = problem.m();
        let d = problem.topology().delay();
        let b = problem.topology().wire_cost();
        let mut limits: Vec<Delay> = out
            .limit
            .iter()
            .copied()
            .filter(|&l| l != NO_CONSTRAINT)
            .collect();
        limits.sort_unstable();
        limits.dedup();
        limits.truncate(MAX_LIMIT_CLASSES);
        let mut folded = Vec::with_capacity(limits.len() * m);
        let mut patch_off = Vec::with_capacity(limits.len() * m + 1);
        let mut patch_idx = Vec::new();
        let mut patch_b = Vec::new();
        patch_off.push(0);
        for &l in &limits {
            for p in 0..m {
                let drow = d.row(p);
                let v: Vec<u16> = (0..m).filter(|&i| drow[i] > l).map(|i| i as u16).collect();
                let s: Vec<u16> = (0..m).filter(|&i| drow[i] <= l).map(|i| i as u16).collect();
                let fold = v.len() <= s.len();
                folded.push(fold);
                for &i in if fold { &v } else { &s } {
                    patch_idx.push(i);
                    patch_b.push(b.row(p)[i as usize]);
                }
                patch_off.push(patch_idx.len() as u32);
            }
        }
        TimingClasses {
            m,
            limits,
            folded,
            patch_off,
            patch_idx,
            patch_b,
        }
    }

    /// Number of distinct-limit classes in the tables.
    #[inline]
    pub(crate) fn class_count(&self) -> usize {
        self.limits.len()
    }

    /// Class index for a limit value, or [`NO_CLASS`] when the limit fell
    /// past the class cap.
    #[inline]
    pub(crate) fn class_of(&self, limit: Delay) -> u16 {
        match self.limits.binary_search(&limit) {
            Ok(c) => c as u16,
            Err(_) => NO_CLASS,
        }
    }

    /// Whether records of class `c` with their source in partition `p` fold
    /// their weight into the base per-partition aggregate.
    #[inline]
    pub(crate) fn folded(&self, c: u16, p: usize) -> bool {
        c != NO_CLASS && self.folded[c as usize * self.m + p]
    }

    /// The flat `(offsets, indices, wire costs)` patch tables, for
    /// [`PartitionProfile`](crate::PartitionProfile) to copy.
    pub(crate) fn patch_tables(&self) -> (&[u32], &[u16], &[Cost]) {
        (&self.patch_off, &self.patch_idx, &self.patch_b)
    }

    /// Bytes of heap owned by the class tables, for the allocation audit.
    pub(crate) fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.limits.capacity() * size_of::<Delay>()
            + self.folded.capacity() * size_of::<bool>()
            + self.patch_off.capacity() * size_of::<u32>()
            + self.patch_idx.capacity() * size_of::<u16>()
            + self.patch_b.capacity() * size_of::<Cost>()
    }
}

/// The owned, problem-detached payload of a [`QMatrix`]: the penalty, both
/// CSR adjacencies (out / in), and the precomputed timing-class patch tables.
///
/// [`QMatrix`] borrows its `Problem`; a body owns no borrow, so callers that
/// *mutate* the problem between solves (the ECO session in `qbp-eco`) hold a
/// `QBody` across edits, patch it in place with [`QBody::patch_rows`], and
/// re-wrap it with [`QMatrix::from_body`] when they need the kernels.
///
/// Equality is bit-exact structural equality of every internal table, which
/// is how the ECO tests assert "patched state == from-scratch construction".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QBody {
    penalty: Cost,
    out: Csr,
    inc: Csr,
    classes: TimingClasses,
    in_class: Vec<u16>,
    has_overflow: bool,
}

impl QBody {
    /// Builds the body for `problem` with the given timing-violation
    /// penalty — exactly what [`QMatrix::new`] constructs internally.
    ///
    /// Construction streams one merged row at a time into the compact CSR
    /// tables (reusing a single scratch row) instead of materializing the
    /// historical nested `Vec<Vec<_>>` pair lists first, so transient memory
    /// at build time is `O(max degree)` on top of the final tables. Offsets
    /// are `u32` and checked: a problem whose merged adjacency exceeds
    /// `u32::MAX` records is rejected with [`Error::IndexOverflow`] instead
    /// of silently wrapping.
    ///
    /// # Errors
    ///
    /// Returns an error if `penalty` is not positive or the adjacency
    /// exceeds the compact index ceiling.
    pub fn build(problem: &Problem, penalty: Cost) -> Result<Self, Error> {
        Self::build_with_index_cap(problem, penalty, u32::MAX as u64)
    }

    /// [`QBody::build`] with an injectable index ceiling in place of the
    /// real `u32::MAX`, so tests can exercise the overflow path without
    /// constructing four billion edges. Production callers use
    /// [`QBody::build`].
    pub fn build_with_index_cap(
        problem: &Problem,
        penalty: Cost,
        cap: u64,
    ) -> Result<Self, Error> {
        if penalty <= 0 {
            return Err(Error::NegativeValue {
                what: "timing penalty",
                value: penalty,
            });
        }
        let n = problem.n();
        if n as u64 > cap {
            return Err(Error::IndexOverflow {
                what: "component ids",
                records: n as u64,
                cap,
            });
        }
        // Upper bound on merged records per direction: every connection plus
        // every constraint-only record (constraints merged into an existing
        // connection record shrink this, never grow it).
        let reserve = problem.circuit().edges().count() + problem.timing().len();
        let mut out = CsrStream::with_capacity(n, reserve, cap, "out adjacency");
        let mut inc = CsrStream::with_capacity(n, reserve, cap, "in adjacency");
        let mut scratch = Vec::new();
        for j in 0..n {
            Self::out_row_into(problem, j, &mut scratch);
            out.push_row(&scratch)?;
            Self::in_row_into(problem, j, &mut scratch);
            inc.push_row(&scratch)?;
        }
        Self::assemble(problem, penalty, out.finish(), inc.finish())
    }

    /// The historical two-phase construction — nested pair rows for the
    /// whole circuit, then [`Csr::from_rows`] — preserved as the equivalence
    /// reference for the streaming build path: the two are property-tested
    /// bit-identical over random circuits. Not for production use; it holds
    /// the full nested layout in memory.
    #[doc(hidden)]
    pub fn build_nested_reference(problem: &Problem, penalty: Cost) -> Result<Self, Error> {
        if penalty <= 0 {
            return Err(Error::NegativeValue {
                what: "timing penalty",
                value: penalty,
            });
        }
        let (out_rows, in_rows) = Self::merged_rows(problem);
        let out = Csr::from_rows(&out_rows);
        let inc = Csr::from_rows(&in_rows);
        Self::assemble(problem, penalty, out, inc)
    }

    /// Shared tail of both build paths: timing-class tables, per-record
    /// class ids, and the overflow flag.
    fn assemble(problem: &Problem, penalty: Cost, out: Csr, inc: Csr) -> Result<Self, Error> {
        let classes = TimingClasses::build(problem, &out);
        let in_class: Vec<u16> = inc
            .limit
            .iter()
            .map(|&l| {
                if l == NO_CONSTRAINT {
                    NO_CLASS
                } else {
                    classes.class_of(l)
                }
            })
            .collect();
        let has_overflow =
            (0..problem.n()).any(|j| inc.constrained(j).any(|(e, ..)| in_class[e] == NO_CLASS));
        Ok(QBody {
            penalty,
            out,
            inc,
            classes,
            in_class,
            has_overflow,
        })
    }

    /// Bytes of heap owned by the body's tables (CSR adjacencies, class
    /// tables, per-record class ids), for the allocation audit in
    /// `perf_snapshot`.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.out.heap_bytes()
            + self.inc.heap_bytes()
            + self.in_class.capacity() * size_of::<u16>()
            + self.classes.heap_bytes()
    }

    /// Estimated peak heap of the nested two-phase build path
    /// ([`QBody::build_nested_reference`]) for this body's adjacency: the
    /// final tables plus, transiently, one `Vec` header per row and one
    /// [`Pair`] per record for both directions. The streaming build never
    /// materializes that nested side, so `heap_bytes()` relative to this is
    /// the layout reduction reported by the bench harness's `scale_bench`.
    pub fn nested_layout_bytes(&self) -> usize {
        use std::mem::size_of;
        let rows = (self.out.off.len().saturating_sub(1)) + (self.inc.off.len().saturating_sub(1));
        let records = self.out.other.len() + self.inc.other.len();
        self.heap_bytes() + rows * size_of::<Vec<Pair>>() + records * size_of::<Pair>()
    }

    /// The historical nested layout: per-component merged pair rows, built
    /// by seeding with connections and then attaching timing limits to
    /// existing records (or creating weight-0 records for pure constraints).
    fn merged_rows(problem: &Problem) -> (Vec<Vec<Pair>>, Vec<Vec<Pair>>) {
        let n = problem.n();
        let mut out_pairs: Vec<Vec<Pair>> = vec![Vec::new(); n];
        let mut in_pairs: Vec<Vec<Pair>> = vec![Vec::new(); n];
        for (j1, j2, w) in problem.circuit().edges() {
            out_pairs[j1.index()].push(Pair {
                other: j2.index() as u32,
                weight: w,
                limit: NO_CONSTRAINT,
            });
            in_pairs[j2.index()].push(Pair {
                other: j1.index() as u32,
                weight: w,
                limit: NO_CONSTRAINT,
            });
        }
        for (j1, j2, limit) in problem.timing().iter() {
            let out = &mut out_pairs[j1.index()];
            match out.iter_mut().find(|p| p.other == j2.index() as u32) {
                Some(p) => p.limit = p.limit.min(limit),
                None => out.push(Pair {
                    other: j2.index() as u32,
                    weight: 0,
                    limit,
                }),
            }
            let inc = &mut in_pairs[j2.index()];
            match inc.iter_mut().find(|p| p.other == j1.index() as u32) {
                Some(p) => p.limit = p.limit.min(limit),
                None => inc.push(Pair {
                    other: j1.index() as u32,
                    weight: 0,
                    limit,
                }),
            }
        }
        (out_pairs, in_pairs)
    }

    /// The out row of component `j` exactly as a fresh [`QBody::build`]
    /// would store it: connection records in the circuit's stored order,
    /// then constraint-only partners in the timing table's stored order.
    fn out_row(problem: &Problem, j: usize) -> Vec<Pair> {
        let mut row = Vec::new();
        Self::out_row_into(problem, j, &mut row);
        row
    }

    /// [`QBody::out_row`] writing into a reusable scratch buffer, so the
    /// streaming build allocates one row's worth of scratch for the whole
    /// circuit instead of one `Vec` per component.
    fn out_row_into(problem: &Problem, j: usize, row: &mut Vec<Pair>) {
        row.clear();
        let id = ComponentId::new(j);
        row.extend(problem.circuit().out_connections(id).map(|(k, w)| Pair {
            other: k.index() as u32,
            weight: w,
            limit: NO_CONSTRAINT,
        }));
        for (k, limit) in problem.timing().constraints_from(id) {
            match row.iter_mut().find(|p| p.other == k.index() as u32) {
                Some(p) => p.limit = p.limit.min(limit),
                None => row.push(Pair {
                    other: k.index() as u32,
                    weight: 0,
                    limit,
                }),
            }
        }
    }

    /// The in row of component `j` exactly as a fresh [`QBody::build`]
    /// would store it. A fresh build emits in-records in ascending *source*
    /// order (it iterates `edges()` / `timing().iter()` source-major, and
    /// each source contributes at most one record per target), so the local
    /// recompute sorts both contribution lists by source — the circuit's
    /// stored `in_edges` order is chronological and must NOT be used as-is.
    fn in_row(problem: &Problem, j: usize) -> Vec<Pair> {
        let mut row = Vec::new();
        Self::in_row_into(problem, j, &mut row);
        row
    }

    /// [`QBody::in_row`] writing into a reusable scratch buffer (see
    /// [`QBody::out_row_into`]).
    fn in_row_into(problem: &Problem, j: usize, row: &mut Vec<Pair>) {
        row.clear();
        let id = ComponentId::new(j);
        row.extend(problem.circuit().in_connections(id).map(|(k, w)| Pair {
            other: k.index() as u32,
            weight: w,
            limit: NO_CONSTRAINT,
        }));
        row.sort_unstable_by_key(|p| p.other);
        let mut cons: Vec<(u32, Delay)> = problem
            .timing()
            .constraints_into(id)
            .map(|(k, l)| (k.index() as u32, l))
            .collect();
        cons.sort_unstable_by_key(|&(k, _)| k);
        for (k, limit) in cons {
            match row.iter_mut().find(|p| p.other == k) {
                Some(p) => p.limit = p.limit.min(limit),
                None => row.push(Pair {
                    other: k,
                    weight: 0,
                    limit,
                }),
            }
        }
    }

    /// Re-derives the out and in rows of every component in `touched` from
    /// the (already mutated) `problem`, splicing them into the CSR tables in
    /// place, then refreshes the timing-class tables if the distinct-limit
    /// set changed. Returns the number of CSR rows spliced (two per touched
    /// component).
    ///
    /// Cost is `O(touched·deg + tail-memmove)` per row plus an `O(T)`
    /// distinct-limit scan — far below a full rebuild for small deltas. The
    /// result is **bit-identical** to `QBody::build` on the mutated problem
    /// (property-tested), so callers may mix patching and rebuilding freely.
    ///
    /// # Panics
    ///
    /// Panics if the component count changed since this body was built (use
    /// [`QBody::build`] for dimension changes) or an index is out of range.
    pub fn patch_rows(&mut self, problem: &Problem, touched: &[usize]) -> usize {
        assert_eq!(
            self.out.split.len(),
            problem.n(),
            "component count changed; rebuild the body instead of patching"
        );
        let mut rows: Vec<usize> = touched.to_vec();
        rows.sort_unstable();
        rows.dedup();
        let mut patched = 0;
        for &j in &rows {
            let out_row = Self::out_row(problem, j);
            self.out.replace_row(j, &out_row);
            let in_row = Self::in_row(problem, j);
            let (lo, _, hi) = self.inc.bounds(j);
            self.inc.replace_row(j, &in_row);
            let (nlo, _, nhi) = self.inc.bounds(j);
            let new_classes: Vec<u16> = (nlo..nhi)
                .map(|e| {
                    let l = self.inc.limit[e];
                    if l == NO_CONSTRAINT {
                        NO_CLASS
                    } else {
                        self.classes.class_of(l)
                    }
                })
                .collect();
            self.in_class.splice(lo..hi, new_classes);
            patched += 2;
        }
        // The class tables depend only on (topology, distinct limit set);
        // rebuild them — and remap every record's class — only when the set
        // actually changed.
        let mut limits: Vec<Delay> = self
            .out
            .limit
            .iter()
            .copied()
            .filter(|&l| l != NO_CONSTRAINT)
            .collect();
        limits.sort_unstable();
        limits.dedup();
        limits.truncate(MAX_LIMIT_CLASSES);
        if limits != self.classes.limits {
            self.classes = TimingClasses::build(problem, &self.out);
            self.in_class = self
                .inc
                .limit
                .iter()
                .map(|&l| {
                    if l == NO_CONSTRAINT {
                        NO_CLASS
                    } else {
                        self.classes.class_of(l)
                    }
                })
                .collect();
        }
        self.has_overflow = self.classes.class_count() == MAX_LIMIT_CLASSES
            && self
                .inc
                .limit
                .iter()
                .zip(&self.in_class)
                .any(|(&l, &c)| l != NO_CONSTRAINT && c == NO_CLASS);
        patched
    }

    /// The penalty this body embeds timing violations with.
    pub fn penalty(&self) -> Cost {
        self.penalty
    }

    /// Number of component rows (the `N` the body was built for).
    pub fn rows(&self) -> usize {
        self.out.split.len()
    }
}

/// The implicit `Q̂` matrix: the paper's timing-embedded quadratic cost.
///
/// ```
/// use qbp_core::{Circuit, PartitionTopology, ProblemBuilder, TimingConstraints,
///                QMatrix, Assignment, Evaluator};
///
/// # fn main() -> Result<(), qbp_core::Error> {
/// let mut circuit = Circuit::new();
/// let a = circuit.add_component("a", 1);
/// let b = circuit.add_component("b", 1);
/// circuit.add_wires(a, b, 5)?;
/// let mut tc = TimingConstraints::new(2);
/// tc.add_symmetric(a, b, 1)?;
/// let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(2, 2, 10)?)
///     .timing(tc)
///     .build()?;
///
/// let q = QMatrix::new(&problem, 50)?;
/// // A timing-feasible assignment: yᵀQ̂y equals the plain objective (Lemma 1).
/// let ok = Assignment::from_parts(vec![0, 1])?;
/// assert_eq!(q.value(&ok), Evaluator::new(&problem).cost(&ok));
/// // A violating assignment pays the penalty on both directed entries.
/// let bad = Assignment::from_parts(vec![0, 3])?;
/// assert_eq!(q.value(&bad), 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QMatrix<'a> {
    problem: &'a Problem,
    body: QBody,
}

impl<'a> QMatrix<'a> {
    /// Builds the implicit `Q̂` for `problem` with the given timing-violation
    /// penalty.
    ///
    /// # Errors
    ///
    /// Returns an error if `penalty` is not positive. (A penalty of at least
    /// [`QMatrix::theorem1_penalty`] makes the embedding *unconditionally*
    /// exact; smaller positive values — like the paper's 50 — are justified
    /// a posteriori by Theorem 2 whenever the minimizer found is
    /// timing-feasible.)
    pub fn new(problem: &'a Problem, penalty: Cost) -> Result<Self, Error> {
        Ok(QMatrix {
            problem,
            body: QBody::build(problem, penalty)?,
        })
    }

    /// Wraps a prebuilt (possibly patched) [`QBody`] so the kernels can run
    /// against it. The ECO session uses this to re-materialize the matrix
    /// after mutating the problem and patching the body in place.
    ///
    /// # Panics
    ///
    /// Panics if the body's row count does not match `problem.n()`.
    pub fn from_body(problem: &'a Problem, body: QBody) -> Self {
        assert_eq!(
            body.rows(),
            problem.n(),
            "QBody row count does not match the problem"
        );
        QMatrix { problem, body }
    }

    /// Releases the owned body, dropping the problem borrow.
    pub fn into_body(self) -> QBody {
        self.body
    }

    /// The owned payload backing this matrix.
    pub fn body(&self) -> &QBody {
        &self.body
    }

    /// The flattened out-pair adjacency (`j → partner` records).
    pub(crate) fn out_csr(&self) -> &Csr {
        &self.body.out
    }

    /// The precomputed per-(limit class, partition) violation tables.
    pub(crate) fn timing_classes(&self) -> &TimingClasses {
        &self.body.classes
    }

    /// Builds `Q̂` with an automatically chosen penalty: strictly larger than
    /// twice the largest possible single-entry base cost (and at least the
    /// paper's 50), so one violation always costs more than re-routing the
    /// heaviest wire bundle across the topology, while staying far below the
    /// Theorem-1 bound to avoid swamping the cost landscape (§3.2's
    /// numerical-accuracy concern).
    ///
    /// # Errors
    ///
    /// Never fails in practice; propagates the positivity check of
    /// [`QMatrix::new`].
    pub fn with_auto_penalty(problem: &'a Problem) -> Result<Self, Error> {
        let max_w = problem
            .circuit()
            .edges()
            .map(|(_, _, w)| w)
            .max()
            .unwrap_or(0);
        let max_b = problem.topology().wire_cost().max_entry();
        let max_p = problem.linear_cost().map_or(0, DenseMatrix::max_entry);
        let bound = 2 * problem
            .beta()
            .saturating_mul(max_w)
            .saturating_mul(max_b)
            .saturating_add(problem.alpha().saturating_mul(max_p))
            .saturating_add(1);
        QMatrix::new(problem, bound.max(PAPER_PENALTY))
    }

    /// The Theorem-1 penalty bound: any `U > 2·Σ|q|` makes
    /// `QBP(Q')` *unconditionally* equivalent to the timing-constrained
    /// `QBP_R(Q)`.
    ///
    /// `Σ|q| = β·(Σ a)·(Σ b) + α·Σ p` because every `a[j1][j2]·b[i1][i2]`
    /// product appears exactly once in the flattened matrix. Saturates on
    /// overflow.
    pub fn theorem1_penalty(problem: &Problem) -> Cost {
        let sum_a = problem.circuit().total_wire_weight();
        let sum_b: Cost = problem
            .topology()
            .wire_cost()
            .iter()
            .fold(0i64, |acc, &v| acc.saturating_add(v));
        let sum_p = problem.linear_cost().map_or(0, DenseMatrix::abs_sum);
        problem
            .beta()
            .saturating_mul(sum_a)
            .saturating_mul(sum_b)
            .saturating_add(problem.alpha().saturating_mul(sum_p))
            .saturating_mul(2)
            .saturating_add(1)
    }

    /// The penalty in force.
    pub fn penalty(&self) -> Cost {
        self.body.penalty
    }

    /// The underlying problem.
    pub fn problem(&self) -> &'a Problem {
        self.problem
    }

    /// `true` when assigning `j1 → i1` and `j2 → i2` violates the timing
    /// constraint on `(j1, j2)` (if any).
    pub fn violates(
        &self,
        i1: PartitionId,
        j1: ComponentId,
        i2: PartitionId,
        j2: ComponentId,
    ) -> bool {
        match self.problem.timing().get(j1, j2) {
            Some(limit) => self.problem.topology().delay()[(i1.index(), i2.index())] > limit,
            None => false,
        }
    }

    /// The entry `q̂[r1][r2]`.
    ///
    /// Runs in `O(deg)` (constraint lookup); use [`QMatrix::dense`] to
    /// inspect whole small matrices.
    pub fn entry(&self, r1: PairIndex, r2: PairIndex) -> Cost {
        let m = self.problem.m();
        let (i1, j1) = r1.parts(m);
        let (i2, j2) = r2.parts(m);
        if self.violates(i1, j1, i2, j2) {
            return self.body.penalty;
        }
        let base = self.problem.beta()
            * self.problem.circuit().connection(j1, j2)
            * self.problem.topology().wire_cost()[(i1.index(), i2.index())];
        if r1 == r2 {
            base + self.problem.alpha() * self.problem.p(i1.index(), j1.index())
        } else {
            base
        }
    }

    /// Materializes `Q̂` as a dense `MN × MN` matrix — for tests, worked
    /// examples and tiny exact solves. Memory is `O((MN)²)`; keep `M·N`
    /// small.
    pub fn dense(&self) -> DenseMatrix<Cost> {
        let m = self.problem.m();
        let n = self.problem.n();
        let mn = m * n;
        let b = self.problem.topology().wire_cost();
        let d = self.problem.topology().delay();
        let mut q = DenseMatrix::filled(mn, mn, 0);
        for j in 0..n {
            for i in 0..m {
                let r = i + j * m;
                q[(r, r)] = self.problem.alpha() * self.problem.p(i, j);
            }
            for (k, w, limit) in self.body.out.all(j) {
                for i1 in 0..m {
                    for i2 in 0..m {
                        let entry = if limit != NO_CONSTRAINT && d[(i1, i2)] > limit {
                            self.body.penalty
                        } else {
                            self.problem.beta() * w * b[(i1, i2)]
                        };
                        let r1 = i1 + j * m;
                        let r2 = i2 + k * m;
                        q[(r1, r2)] += entry;
                    }
                }
            }
        }
        q
    }

    /// The quadratic form `yᵀQ̂y` for the boolean vector `y` induced by
    /// `assignment`.
    ///
    /// For timing-feasible assignments this equals the plain objective
    /// (Lemma 1: `Q` and `Q̂` coincide over the feasible region); every
    /// violated directed constraint pair adds `penalty` *instead of* its
    /// base interconnect term.
    ///
    /// Runs in `O(E + T)`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment does not match the problem's dimensions.
    pub fn value(&self, assignment: &Assignment) -> Cost {
        let b = self.problem.topology().wire_cost();
        let d = self.problem.topology().delay();
        let beta = self.problem.beta();
        let alpha = self.problem.alpha();
        let mut total = 0;
        for j in 0..self.problem.n() {
            let ij = assignment.part_index(j);
            total += alpha * self.problem.p(ij, j);
            let brow = b.row(ij);
            for (k, w) in self.body.out.unconstrained(j) {
                total += beta * w * brow[assignment.part_index(k)];
            }
            let drow = d.row(ij);
            for (_, k, w, limit) in self.body.out.constrained(j) {
                let ik = assignment.part_index(k);
                if drow[ik] > limit {
                    total += self.body.penalty;
                } else {
                    total += beta * w * brow[ik];
                }
            }
        }
        total
    }

    /// Exact change in `yᵀQ̂y` if component `j` moves to partition `to`
    /// (0 when `to` is its current partition).
    ///
    /// This is the embedded-objective analogue of
    /// [`Evaluator::move_delta`](crate::Evaluator::move_delta): identical for
    /// timing-clean neighborhoods, and additionally charges/discharges the
    /// penalty on every timing-constrained pair incident to `j`. Runs in
    /// `O(deg(j) + constraints(j))`.
    ///
    /// # Panics
    ///
    /// Panics if `j` or `to` is out of range.
    pub fn move_delta(&self, assignment: &Assignment, j: ComponentId, to: PartitionId) -> Cost {
        let from = assignment.part_index(j.index());
        let to_i = to.index();
        if from == to_i {
            return 0;
        }
        let b = self.problem.topology().wire_cost();
        let d = self.problem.topology().delay();
        let beta = self.problem.beta();
        let mut delta = self.problem.alpha()
            * (self.problem.p(to_i, j.index()) - self.problem.p(from, j.index()));
        // Entry value for the ordered pair (row partition, col partition).
        let entry = |w: Cost, limit: Delay, i_row: usize, i_col: usize| -> Cost {
            if limit != NO_CONSTRAINT && d[(i_row, i_col)] > limit {
                self.body.penalty
            } else {
                beta * w * b[(i_row, i_col)]
            }
        };
        for (k, w, limit) in self.body.out.all(j.index()) {
            let ik = assignment.part_index(k);
            delta += entry(w, limit, to_i, ik) - entry(w, limit, from, ik);
        }
        for (k, w, limit) in self.body.inc.all(j.index()) {
            let ik = assignment.part_index(k);
            delta += entry(w, limit, ik, to_i) - entry(w, limit, ik, from);
        }
        delta
    }

    /// Exact change in `yᵀQ̂y` if components `j1` and `j2` swap partitions
    /// (0 when they share a partition or `j1 == j2`) — the embedded-objective
    /// analogue of [`Evaluator::swap_delta`](crate::Evaluator::swap_delta).
    ///
    /// Runs in `O(deg(j1) + deg(j2) + constraints(j1) + constraints(j2))`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn swap_delta(&self, assignment: &Assignment, j1: ComponentId, j2: ComponentId) -> Cost {
        if j1 == j2 {
            return 0;
        }
        let i1 = assignment.part_index(j1.index());
        let i2 = assignment.part_index(j2.index());
        if i1 == i2 {
            return 0;
        }
        let b = self.problem.topology().wire_cost();
        let d = self.problem.topology().delay();
        let beta = self.problem.beta();
        let entry = |w: Cost, limit: Delay, i_row: usize, i_col: usize| -> Cost {
            if limit != NO_CONSTRAINT && d[(i_row, i_col)] > limit {
                self.body.penalty
            } else {
                beta * w * b[(i_row, i_col)]
            }
        };
        let mut delta = self.problem.alpha()
            * (self.problem.p(i2, j1.index()) - self.problem.p(i1, j1.index())
                + self.problem.p(i1, j2.index())
                - self.problem.p(i2, j2.index()));
        // Pairs incident to j1 (the j1–j2 pairs handled separately below).
        for (k, w, limit) in self.body.out.all(j1.index()) {
            if k == j2.index() {
                delta += entry(w, limit, i2, i1) - entry(w, limit, i1, i2);
                continue;
            }
            let ik = assignment.part_index(k);
            delta += entry(w, limit, i2, ik) - entry(w, limit, i1, ik);
        }
        for (k, w, limit) in self.body.inc.all(j1.index()) {
            if k == j2.index() {
                continue; // mirrored by j2's out record below
            }
            let ik = assignment.part_index(k);
            delta += entry(w, limit, ik, i2) - entry(w, limit, ik, i1);
        }
        for (k, w, limit) in self.body.out.all(j2.index()) {
            if k == j1.index() {
                delta += entry(w, limit, i1, i2) - entry(w, limit, i2, i1);
                continue;
            }
            let ik = assignment.part_index(k);
            delta += entry(w, limit, i1, ik) - entry(w, limit, i2, ik);
        }
        for (k, w, limit) in self.body.inc.all(j2.index()) {
            if k == j1.index() {
                continue;
            }
            let ik = assignment.part_index(k);
            delta += entry(w, limit, ik, i1) - entry(w, limit, ik, i2);
        }
        delta
    }

    /// Number of directed timing-constraint pairs violated by `assignment`
    /// (the count of penalty entries active in [`QMatrix::value`]).
    ///
    /// # Panics
    ///
    /// Panics if the assignment does not match the problem's dimensions.
    pub fn violation_count(&self, assignment: &Assignment) -> usize {
        let d = self.problem.topology().delay();
        self.problem
            .timing()
            .iter()
            .filter(|&(j1, j2, limit)| {
                d[(
                    assignment.part_index(j1.index()),
                    assignment.part_index(j2.index()),
                )] > limit
            })
            .count()
    }

    /// STEP 3 of the generalized Burkard heuristic: computes
    /// `η[s] = Σ_r q̂[r][s]·u[r]` for every `s`, where `u` is the boolean
    /// vector of `assignment`.
    ///
    /// `out` is resized to `M·N`. Runs in `O((E + T)·M + N)` — this is the
    /// sparse kernel that makes the heuristic practical on circuits with
    /// hundreds of components (§4.3); compare
    /// [`QMatrix::eta_dense_reference`].
    ///
    /// # Panics
    ///
    /// Panics if the assignment does not match the problem's dimensions.
    pub fn eta(&self, assignment: &Assignment, out: &mut Vec<Cost>) {
        let m = self.problem.m();
        let n = self.problem.n();
        let b = self.problem.topology().wire_cost();
        let d = self.problem.topology().delay();
        let beta = self.problem.beta();
        let alpha = self.problem.alpha();
        out.clear();
        out.resize(m * n, 0);
        for j in 0..n {
            let slot = &mut out[j * m..(j + 1) * m];
            // Pure connections first (the CSR prefix): β·w·b[ik][i] for
            // every candidate i, no limit checks.
            for (k, w) in self.body.inc.unconstrained(j) {
                let coeff = beta * w;
                let brow = b.row(assignment.part_index(k));
                for (i, v) in slot.iter_mut().enumerate() {
                    *v += coeff * brow[i];
                }
            }
            for (_, k, w, limit) in self.body.inc.constrained(j) {
                let ik = assignment.part_index(k);
                let coeff = beta * w;
                let brow = b.row(ik);
                let drow = d.row(ik);
                for (i, v) in slot.iter_mut().enumerate() {
                    *v += if drow[i] > limit {
                        self.body.penalty
                    } else {
                        coeff * brow[i]
                    };
                }
            }
            // Diagonal contribution from u[(A(j), j)] = 1.
            let ij = assignment.part_index(j);
            slot[ij] += alpha * self.problem.p(ij, j);
        }
    }

    /// Incremental [`QMatrix::eta`]: patches `eta` (previously computed for
    /// `prev`) in place so it equals `eta` freshly computed for `next`.
    ///
    /// Only components whose partition changed contribute: moving `k` from
    /// `p` to `q` shifts the row index of every contribution `k` makes to its
    /// partners' slots (the mirror of `in_pairs[partner]`'s `k`-record lives
    /// in `out_pairs[k]` with identical merged weight/limit), plus `k`'s own
    /// diagonal term. Cost is `O(moved·deg·M)` instead of the full
    /// `O((E + T)·M + N)` — a large win for the heuristic's inner loop,
    /// where successive iterates typically differ in a handful of positions.
    /// All arithmetic is exact integer addition, so the patched vector is
    /// bit-identical to a fresh computation.
    ///
    /// Falls back to a full recompute (and returns `false`) when `eta` has
    /// the wrong length (cold buffer) or more than `N/2` components moved —
    /// past that point the patch walks most of the pair lists anyway and the
    /// dense sweep's sequential access wins.
    ///
    /// # Panics
    ///
    /// Panics if either assignment does not match the problem's dimensions.
    pub fn eta_update(
        &self,
        prev: &Assignment,
        next: &Assignment,
        eta: &mut Vec<Cost>,
    ) -> bool {
        let m = self.problem.m();
        let n = self.problem.n();
        if eta.len() != m * n {
            self.eta(next, eta);
            return false;
        }
        let moved: Vec<usize> = (0..n)
            .filter(|&j| prev.part_index(j) != next.part_index(j))
            .collect();
        if moved.len() > n / 2 {
            self.eta(next, eta);
            return false;
        }
        let b = self.problem.topology().wire_cost();
        let d = self.problem.topology().delay();
        let beta = self.problem.beta();
        let alpha = self.problem.alpha();
        for &k in &moved {
            let from = prev.part_index(k);
            let to = next.part_index(k);
            for (j, w) in self.body.out.unconstrained(k) {
                let slot = &mut eta[j * m..(j + 1) * m];
                let coeff = beta * w;
                let b_old = b.row(from);
                let b_new = b.row(to);
                for (i, v) in slot.iter_mut().enumerate() {
                    *v += coeff * (b_new[i] - b_old[i]);
                }
            }
            for (_, j, w, limit) in self.body.out.constrained(k) {
                let slot = &mut eta[j * m..(j + 1) * m];
                let coeff = beta * w;
                let (b_old, d_old) = (b.row(from), d.row(from));
                let (b_new, d_new) = (b.row(to), d.row(to));
                for (i, v) in slot.iter_mut().enumerate() {
                    let old = if d_old[i] > limit {
                        self.body.penalty
                    } else {
                        coeff * b_old[i]
                    };
                    let new = if d_new[i] > limit {
                        self.body.penalty
                    } else {
                        coeff * b_new[i]
                    };
                    *v += new - old;
                }
            }
            let slot = &mut eta[k * m..(k + 1) * m];
            slot[from] -= alpha * self.problem.p(from, k);
            slot[to] += alpha * self.problem.p(to, k);
        }
        true
    }

    /// Profile-accelerated [`QMatrix::eta`]: identical output, computed from
    /// the per-partition aggregated neighbor weights of `profile` (an
    /// embedded [`PartitionProfile`] of this matrix, synced to `assignment`).
    ///
    /// Per column `j`, the unconstrained mass — plus every *folded*
    /// constrained record (see [`TimingClasses`]) — collapses to at most one
    /// row-axpy per occupied source partition (`O(M)` lookups instead of one
    /// walk per record), and the timing fix-ups collapse to one elementwise
    /// add of the profile's precomputed correction row plus one row-wide
    /// penalty. No per-record work remains (records past the limit-class cap
    /// excepted). All arithmetic is exact integer addition and cancellation,
    /// so the result is bit-identical to [`QMatrix::eta`] (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if `profile` was not built with this matrix's dimensions or
    /// the assignment does not match the problem's dimensions.
    pub fn eta_profiled(
        &self,
        assignment: &Assignment,
        profile: &PartitionProfile,
        out: &mut Vec<Cost>,
    ) {
        let m = self.problem.m();
        let n = self.problem.n();
        assert_eq!(profile.m(), m, "profile partition count mismatch");
        assert_eq!(profile.n(), n, "profile component count mismatch");
        out.clear();
        out.resize(m * n, 0);
        for j in 0..n {
            self.eta_profiled_column(j, &mut out[j * m..(j + 1) * m], assignment, profile);
        }
    }

    /// Parallel [`QMatrix::eta_profiled`]: fans the η columns across up to
    /// `threads` scoped workers via [`crate::par::for_each_row`]. Each column
    /// is an independent pure function of the (shared, read-only) assignment
    /// and profile writing a disjoint `M`-slot of `out`, so the result is
    /// bit-identical to the serial kernel for every thread count.
    ///
    /// Returns the number of worker chunks used (`1` = the serial loop ran).
    ///
    /// # Panics
    ///
    /// Panics like [`QMatrix::eta_profiled`].
    pub fn eta_profiled_par(
        &self,
        assignment: &Assignment,
        profile: &PartitionProfile,
        out: &mut Vec<Cost>,
        threads: usize,
    ) -> usize {
        let m = self.problem.m();
        let n = self.problem.n();
        assert_eq!(profile.m(), m, "profile partition count mismatch");
        assert_eq!(profile.n(), n, "profile component count mismatch");
        out.clear();
        out.resize(m * n, 0);
        crate::par::for_each_row(threads, m, out, |j, slot| {
            self.eta_profiled_column(j, slot, assignment, profile);
        })
    }

    /// One column of [`QMatrix::eta_profiled`]: accumulates η row `j` into
    /// `slot` (length `M`, pre-zeroed). Forced inline so both the serial
    /// column loop and the parallel chunk closure hoist the topology/weight
    /// lookups out of their column loops instead of paying a call per column.
    #[inline(always)]
    fn eta_profiled_column(
        &self,
        j: usize,
        slot: &mut [Cost],
        assignment: &Assignment,
        profile: &PartitionProfile,
    ) {
        let b = self.problem.topology().wire_cost();
        let d = self.problem.topology().delay();
        let beta = self.problem.beta();
        let alpha = self.problem.alpha();
        // 1. Base: one 4-lane-unrolled axpy per occupied source partition
        //    covers every unconstrained in-record and every folded
        //    constrained one.
        for (p, &wsum) in profile.in_row(j).iter().enumerate() {
            if wsum != 0 {
                crate::profile::axpy(slot, beta * wsum, b.row(p));
            }
        }
        // 2. Constrained fix-ups straight from the profile's
        //    penalty-relevant tally: one elementwise row add plus one
        //    row-wide penalty (batched below), no per-record work. Columns
        //    without a packed correction row contribute nothing.
        let mut pen_all: Cost = 0;
        if let Some((fix, pen)) = profile.constrained_fix(j) {
            crate::profile::add_rows(slot, fix);
            pen_all += pen;
        }
        if self.body.has_overflow {
            // Overflow classes: never folded, never cell-tallied; walk
            // them explicitly like the plain kernel.
            for (e, k, w, limit) in self.body.inc.constrained(j) {
                if self.body.in_class[e] != NO_CLASS {
                    continue;
                }
                let p = assignment.part_index(k);
                let coeff = beta * w;
                let drow = d.row(p);
                for ((v, &bv), &dv) in slot.iter_mut().zip(b.row(p)).zip(drow) {
                    *v += if dv > limit { self.body.penalty } else { coeff * bv };
                }
            }
        }
        if pen_all != 0 {
            for v in slot.iter_mut() {
                *v += pen_all;
            }
        }
        // 3. Diagonal contribution from u[(A(j), j)] = 1.
        let ij = assignment.part_index(j);
        slot[ij] += alpha * self.problem.p(ij, j);
    }

    /// Snapshots the merged pair lists in the historical nested
    /// `Vec<Vec<_>>` layout for [`NestedEtaBaseline`].
    pub fn nested_eta_baseline(&self) -> NestedEtaBaseline {
        let (_, in_rows) = QBody::merged_rows(self.problem);
        NestedEtaBaseline { in_pairs: in_rows }
    }

    /// Reference implementation of [`QMatrix::eta`] via the dense matrix —
    /// `O((MN)²)`, used by tests and the sparse-vs-dense ablation benchmark.
    pub fn eta_dense_reference(&self, assignment: &Assignment) -> Vec<Cost> {
        let m = self.problem.m();
        let n = self.problem.n();
        let q = self.dense();
        let y = assignment.indicator_vector(m);
        let mut eta = vec![0; m * n];
        for (s, e) in eta.iter_mut().enumerate() {
            for (r, &set) in y.iter().enumerate() {
                if set {
                    *e += q[(r, s)];
                }
            }
        }
        eta
    }

    /// The constant bound vector `ω` of eq. (2):
    /// `ω[r] ≥ Σ_s q̂[r][s]·y[s]` for every capacity-feasible `y`.
    ///
    /// Computed as `ω[(i,j)] = α·p[i][j] + Σ_{partners k of j} max_{i2}
    /// q̂[(i,j)][(i2,k)]`, which dominates any single choice of partner
    /// partitions. Runs in `O((E + T)·M)` (plus `O(M²)` preprocessing).
    pub fn omega(&self) -> Vec<Cost> {
        let m = self.problem.m();
        let n = self.problem.n();
        let b = self.problem.topology().wire_cost();
        let d = self.problem.topology().delay();
        let beta = self.problem.beta();
        let alpha = self.problem.alpha();
        // max_b_row[i] = max_{i2} b[i][i2].
        let max_b_row: Vec<Cost> = (0..m)
            .map(|i| b.row(i).iter().copied().max().unwrap_or(0))
            .collect();
        let mut omega = vec![0; m * n];
        for j in 0..n {
            let slot = &mut omega[j * m..(j + 1) * m];
            for (i, v) in slot.iter_mut().enumerate() {
                *v = alpha * self.problem.p(i, j);
            }
            for (_, w) in self.body.out.unconstrained(j) {
                let coeff = beta * w;
                for (i, v) in slot.iter_mut().enumerate() {
                    *v += coeff * max_b_row[i];
                }
            }
            for (_, _, w, limit) in self.body.out.constrained(j) {
                let coeff = beta * w;
                for (i, v) in slot.iter_mut().enumerate() {
                    let mut best = Cost::MIN;
                    let brow = b.row(i);
                    let drow = d.row(i);
                    for i2 in 0..m {
                        let e = if drow[i2] > limit {
                            self.body.penalty
                        } else {
                            coeff * brow[i2]
                        };
                        best = best.max(e);
                    }
                    *v += best;
                }
            }
        }
        omega
    }

    /// `ξ = Σ_r ω[r]·u[r]` for the boolean vector of `assignment` (STEP 3).
    ///
    /// # Panics
    ///
    /// Panics if `omega` or the assignment have the wrong length.
    pub fn xi(&self, omega: &[Cost], assignment: &Assignment) -> Cost {
        let m = self.problem.m();
        assert_eq!(omega.len(), m * self.problem.n(), "omega length mismatch");
        (0..self.problem.n())
            .map(|j| omega[assignment.part_index(j) + j * m])
            .sum()
    }
}

/// The pre-CSR nested adjacency layout (`Vec<Vec<_>>` pair rows), preserved
/// as the honest comparison baseline for the kernel-regression benchmark in
/// `perf_snapshot`: [`NestedEtaBaseline::eta`] replicates the historical
/// pointer-chasing η walk, so old-vs-new kernel timings compare the data
/// layout and aggregation strategy, not two different algorithms.
#[derive(Debug, Clone)]
pub struct NestedEtaBaseline {
    in_pairs: Vec<Vec<Pair>>,
}

impl NestedEtaBaseline {
    /// The historical η kernel: per column, walk the nested in-pair list and
    /// branch on each record's limit. The output is identical to
    /// [`QMatrix::eta`]; only the memory layout (and therefore the speed)
    /// differs.
    ///
    /// # Panics
    ///
    /// Panics if `q` or `assignment` mismatch the snapshot's dimensions.
    pub fn eta(&self, q: &QMatrix<'_>, assignment: &Assignment, out: &mut Vec<Cost>) {
        let problem = q.problem();
        let m = problem.m();
        let n = problem.n();
        assert_eq!(self.in_pairs.len(), n, "baseline dimension mismatch");
        let b = problem.topology().wire_cost();
        let d = problem.topology().delay();
        let beta = problem.beta();
        let alpha = problem.alpha();
        let penalty = q.penalty();
        out.clear();
        out.resize(m * n, 0);
        for j in 0..n {
            let slot = &mut out[j * m..(j + 1) * m];
            for pair in &self.in_pairs[j] {
                let ik = assignment.part_index(pair.other as usize);
                let coeff = beta * pair.weight;
                let brow = b.row(ik);
                if pair.limit == NO_CONSTRAINT {
                    for (i, v) in slot.iter_mut().enumerate() {
                        *v += coeff * brow[i];
                    }
                } else {
                    let drow = d.row(ik);
                    for (i, v) in slot.iter_mut().enumerate() {
                        *v += if drow[i] > pair.limit {
                            penalty
                        } else {
                            coeff * brow[i]
                        };
                    }
                }
            }
            let ij = assignment.part_index(j);
            slot[ij] += alpha * problem.p(ij, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, Evaluator, PartitionTopology, ProblemBuilder, TimingConstraints};

    /// The exact worked example of §3.3: components a, b, c on a 2×2 grid,
    /// A(a,b) = 5, A(b,c) = 2, D_C(a,b) = D_C(b,c) = 1, penalty 50.
    fn paper_problem() -> Problem {
        let mut c = Circuit::new();
        let a = c.add_component("a", 1);
        let b = c.add_component("b", 1);
        let d = c.add_component("c", 1);
        c.add_wires(a, b, 5).unwrap();
        c.add_wires(b, d, 2).unwrap();
        let mut tc = TimingConstraints::new(3);
        tc.add_symmetric(a, b, 1).unwrap();
        tc.add_symmetric(b, d, 1).unwrap();
        ProblemBuilder::new(c, PartitionTopology::grid(2, 2, 10).unwrap())
            .timing(tc)
            .build()
            .unwrap()
    }

    /// The paper's printed 12×12 Q̂ (with all p entries zero).
    fn paper_qhat() -> DenseMatrix<Cost> {
        let rows: Vec<Vec<Cost>> = vec![
            //        a1 a2 a3 a4   b1 b2 b3 b4   c1 c2 c3 c4
            /* a1 */ vec![0, 0, 0, 0, 0, 5, 5, 50, 0, 0, 0, 0],
            /* a2 */ vec![0, 0, 0, 0, 5, 0, 50, 5, 0, 0, 0, 0],
            /* a3 */ vec![0, 0, 0, 0, 5, 50, 0, 5, 0, 0, 0, 0],
            /* a4 */ vec![0, 0, 0, 0, 50, 5, 5, 0, 0, 0, 0, 0],
            /* b1 */ vec![0, 5, 5, 50, 0, 0, 0, 0, 0, 2, 2, 50],
            /* b2 */ vec![5, 0, 50, 5, 0, 0, 0, 0, 2, 0, 50, 2],
            /* b3 */ vec![5, 50, 0, 5, 0, 0, 0, 0, 2, 50, 0, 2],
            /* b4 */ vec![50, 5, 5, 0, 0, 0, 0, 0, 50, 2, 2, 0],
            /* c1 */ vec![0, 0, 0, 0, 0, 2, 2, 50, 0, 0, 0, 0],
            /* c2 */ vec![0, 0, 0, 0, 2, 0, 50, 2, 0, 0, 0, 0],
            /* c3 */ vec![0, 0, 0, 0, 2, 50, 0, 2, 0, 0, 0, 0],
            /* c4 */ vec![0, 0, 0, 0, 50, 2, 2, 0, 0, 0, 0, 0],
        ];
        DenseMatrix::from_rows(rows).unwrap()
    }

    #[test]
    fn dense_reproduces_paper_example_matrix() {
        let problem = paper_problem();
        let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
        assert_eq!(q.dense(), paper_qhat());
    }

    #[test]
    fn entry_agrees_with_dense_everywhere() {
        let problem = paper_problem();
        let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
        let dense = q.dense();
        let mn = problem.m() * problem.n();
        for r1 in 0..mn {
            for r2 in 0..mn {
                assert_eq!(
                    q.entry(PairIndex::new(r1), PairIndex::new(r2)),
                    dense[(r1, r2)],
                    "entry ({r1},{r2})"
                );
            }
        }
    }

    #[test]
    fn diagonal_carries_linear_cost() {
        let circuit = {
            let mut c = Circuit::new();
            let a = c.add_component("a", 1);
            let b = c.add_component("b", 1);
            c.add_wires(a, b, 5).unwrap();
            c
        };
        let topo = PartitionTopology::grid(2, 2, 10).unwrap();
        let p = DenseMatrix::from_fn(4, 2, |i, j| (10 * i + j) as Cost);
        let problem = ProblemBuilder::new(circuit, topo)
            .linear_cost(p)
            .build()
            .unwrap();
        let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
        let dense = q.dense();
        for j in 0..2 {
            for i in 0..4 {
                let r = i + j * 4;
                assert_eq!(dense[(r, r)], (10 * i + j) as Cost);
            }
        }
    }

    #[test]
    fn value_equals_objective_when_feasible() {
        // Lemma 1: Q and Q̂ coincide over the feasible region.
        let problem = paper_problem();
        let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
        let eval = Evaluator::new(&problem);
        let feasible = Assignment::from_parts(vec![0, 1, 3]).unwrap();
        assert_eq!(q.violation_count(&feasible), 0);
        assert_eq!(q.value(&feasible), eval.cost(&feasible));
    }

    #[test]
    fn value_pays_penalty_per_violated_directed_pair() {
        let problem = paper_problem();
        let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
        // a→1, b→4 (violates a↔b both ways), c→4 (b,c same partition: fine).
        let asg = Assignment::from_parts(vec![0, 3, 3]).unwrap();
        assert_eq!(q.violation_count(&asg), 2);
        // Base cost: a-b pair replaced by penalties; b-c at distance 0.
        assert_eq!(q.value(&asg), 2 * 50);
    }

    #[test]
    fn value_matches_dense_quadratic_form() {
        let problem = paper_problem();
        let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
        let dense = q.dense();
        for parts in [[0u32, 1, 3], [0, 3, 3], [2, 2, 2], [1, 0, 2], [3, 0, 1]] {
            let asg = Assignment::from_parts(parts.to_vec()).unwrap();
            let y = asg.indicator_vector(problem.m());
            let mut expect = 0;
            for (r1, &y1) in y.iter().enumerate() {
                if !y1 {
                    continue;
                }
                for (r2, &y2) in y.iter().enumerate() {
                    if y2 {
                        expect += dense[(r1, r2)];
                    }
                }
            }
            assert_eq!(q.value(&asg), expect, "parts {parts:?}");
        }
    }

    #[test]
    fn move_delta_matches_value_recompute() {
        let problem = paper_problem();
        let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
        for parts in [[0u32, 1, 3], [0, 3, 3], [2, 2, 2], [1, 0, 2]] {
            let asg = Assignment::from_parts(parts.to_vec()).unwrap();
            for j in 0..3 {
                for i in 0..4 {
                    let mut moved = asg.clone();
                    moved.move_to(ComponentId::new(j), PartitionId::new(i));
                    assert_eq!(
                        q.move_delta(&asg, ComponentId::new(j), PartitionId::new(i)),
                        q.value(&moved) - q.value(&asg),
                        "parts {parts:?} move c{j} -> p{i}"
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_eta_matches_dense_reference() {
        let problem = paper_problem();
        let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
        let mut eta = Vec::new();
        for parts in [[0u32, 1, 3], [0, 3, 3], [2, 2, 2], [1, 0, 2]] {
            let asg = Assignment::from_parts(parts.to_vec()).unwrap();
            q.eta(&asg, &mut eta);
            assert_eq!(eta, q.eta_dense_reference(&asg), "parts {parts:?}");
        }
    }

    #[test]
    fn omega_bounds_all_row_sums() {
        // ω[r] must dominate Σ_s q̂[r][s]·y[s] for every assignment y.
        let problem = paper_problem();
        let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
        let omega = q.omega();
        let dense = q.dense();
        let m = problem.m();
        let n = problem.n();
        // Enumerate all M^N assignments.
        for code in 0..(m as u64).pow(n as u32) {
            let mut parts = Vec::with_capacity(n);
            let mut c = code;
            for _ in 0..n {
                parts.push((c % m as u64) as u32);
                c /= m as u64;
            }
            let asg = Assignment::from_parts(parts).unwrap();
            let y = asg.indicator_vector(m);
            for r in 0..m * n {
                let row_sum: Cost = y
                    .iter()
                    .enumerate()
                    .filter(|&(_, &set)| set)
                    .map(|(s, _)| dense[(r, s)])
                    .sum();
                assert!(
                    omega[r] >= row_sum,
                    "omega[{r}] = {} < row sum {} at {:?}",
                    omega[r],
                    row_sum,
                    asg.as_slice()
                );
            }
        }
    }

    #[test]
    fn xi_is_omega_dot_u() {
        let problem = paper_problem();
        let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
        let omega = q.omega();
        let asg = Assignment::from_parts(vec![0, 3, 1]).unwrap();
        let y = asg.indicator_vector(problem.m());
        let direct: Cost = y
            .iter()
            .enumerate()
            .filter(|&(_, &set)| set)
            .map(|(r, _)| omega[r])
            .sum();
        assert_eq!(q.xi(&omega, &asg), direct);
    }

    #[test]
    fn theorem1_penalty_exceeds_twice_abs_sum() {
        let problem = paper_problem();
        let u = QMatrix::theorem1_penalty(&problem);
        // Build the *unembedded* Q (no penalty active ⇒ use a Q̂ whose
        // penalty never triggers: strip timing).
        let plain = problem.without_timing();
        let q = QMatrix::new(&plain, 1).unwrap();
        let abs_sum = q.dense().abs_sum();
        assert!(u > 2 * abs_sum, "U = {u} vs 2Σ|q| = {}", 2 * abs_sum);
    }

    #[test]
    fn auto_penalty_dominates_heaviest_edge_term() {
        let problem = paper_problem();
        let q = QMatrix::with_auto_penalty(&problem).unwrap();
        // Heaviest single base entry is 5·2 = 10; auto must exceed it and be
        // at least the paper's 50.
        assert!(q.penalty() >= 50);
        assert!(q.penalty() > 2 * 10);
    }

    #[test]
    fn patch_rows_delete_then_readd_pair() {
        let mut problem = paper_problem();
        let mut body = QBody::build(&problem, PAPER_PENALTY).unwrap();
        let (a, b) = (ComponentId::new(0), ComponentId::new(1));
        // Delete the connection (constraint-only record remains), re-add it,
        // then delete and re-add the timing bound: every intermediate body
        // must be bit-identical to a from-scratch build on the edited state.
        problem.set_pair_weight(a, b, 0).unwrap();
        body.patch_rows(&problem, &[0, 1]);
        assert_eq!(body, QBody::build(&problem, PAPER_PENALTY).unwrap());
        problem.set_pair_weight(a, b, 5).unwrap();
        body.patch_rows(&problem, &[0, 1]);
        assert_eq!(body, QBody::build(&problem, PAPER_PENALTY).unwrap());
        problem.set_timing_bound(a, b, None).unwrap();
        body.patch_rows(&problem, &[0, 1]);
        assert_eq!(body, QBody::build(&problem, PAPER_PENALTY).unwrap());
        problem.set_timing_bound(a, b, Some(1)).unwrap();
        body.patch_rows(&problem, &[0, 1]);
        assert_eq!(body, QBody::build(&problem, PAPER_PENALTY).unwrap());
    }

    #[test]
    fn body_roundtrips_through_matrix() {
        let problem = paper_problem();
        let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
        let dense = q.dense();
        let body = q.into_body();
        assert_eq!(body.penalty(), PAPER_PENALTY);
        assert_eq!(body.rows(), problem.n());
        let q2 = QMatrix::from_body(&problem, body);
        assert_eq!(q2.dense(), dense);
    }

    #[test]
    fn build_past_index_cap_errors_instead_of_panicking() {
        let problem = paper_problem();
        // 5 merged out-records (a→b, b→a from symmetric timing, b→c, c→b,
        // plus merges) exceed a cap of 2; the real u32::MAX ceiling is
        // exercised by the same path.
        let err = QBody::build_with_index_cap(&problem, PAPER_PENALTY, 2).unwrap_err();
        match err {
            Error::IndexOverflow { records, cap, .. } => {
                assert!(records > cap);
                assert_eq!(cap, 2);
            }
            other => panic!("expected IndexOverflow, got {other:?}"),
        }
        // And it lifts to QbpError::Model at the API boundary.
        let lifted: crate::QbpError = err.into();
        assert!(matches!(lifted, crate::QbpError::Model(Error::IndexOverflow { .. })));
    }

    #[test]
    fn streamed_build_matches_nested_reference_on_paper_example() {
        let problem = paper_problem();
        let streamed = QBody::build(&problem, PAPER_PENALTY).unwrap();
        let nested = QBody::build_nested_reference(&problem, PAPER_PENALTY).unwrap();
        assert_eq!(streamed, nested);
        assert!(streamed.heap_bytes() > 0);
    }

    #[test]
    fn nonpositive_penalty_rejected() {
        let problem = paper_problem();
        assert!(QMatrix::new(&problem, 0).is_err());
        assert!(QMatrix::new(&problem, -5).is_err());
    }

    #[test]
    fn embedding_is_exact_on_small_instance() {
        // Theorem 1 empirically: with U from theorem1_penalty, the
        // unconstrained minimum over capacity-feasible assignments equals
        // the timing-constrained minimum of the original objective.
        let problem = paper_problem();
        let u = QMatrix::theorem1_penalty(&problem);
        let q = QMatrix::new(&problem, u).unwrap();
        let eval = Evaluator::new(&problem);
        let m = problem.m();
        let n = problem.n();
        let mut best_embedded: Option<(Cost, Assignment)> = None;
        let mut best_constrained: Option<Cost> = None;
        for code in 0..(m as u64).pow(n as u32) {
            let mut parts = Vec::with_capacity(n);
            let mut c = code;
            for _ in 0..n {
                parts.push((c % m as u64) as u32);
                c /= m as u64;
            }
            let asg = Assignment::from_parts(parts).unwrap();
            // Capacity always satisfied here (sizes 1, caps 10).
            let v = q.value(&asg);
            if best_embedded.as_ref().is_none_or(|(bv, _)| v < *bv) {
                best_embedded = Some((v, asg.clone()));
            }
            if q.violation_count(&asg) == 0 {
                let c0 = eval.cost(&asg);
                if best_constrained.is_none_or(|b| c0 < b) {
                    best_constrained = Some(c0);
                }
            }
        }
        let (bv, basg) = best_embedded.unwrap();
        assert_eq!(q.violation_count(&basg), 0, "minimizer must be feasible");
        assert_eq!(bv, best_constrained.unwrap());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{Circuit, PartitionTopology, ProblemBuilder, TimingConstraints};
    use proptest::prelude::*;

    fn arb_timed_problem() -> impl Strategy<Value = (Problem, Vec<u32>)> {
        (2usize..6, 2usize..5).prop_flat_map(|(n, m)| {
            let edges = proptest::collection::vec(
                ((0..n, 0..n).prop_filter("no self", |(a, b)| a != b), 1i64..5),
                0..10,
            );
            let cons = proptest::collection::vec(
                ((0..n, 0..n).prop_filter("no self", |(a, b)| a != b), 0i64..3),
                0..8,
            );
            let parts = proptest::collection::vec(0u32..m as u32, n);
            (Just((n, m)), edges, cons, parts).prop_map(|((n, m), edges, cons, parts)| {
                let mut circuit = Circuit::new();
                for j in 0..n {
                    circuit.add_component(format!("c{j}"), 1);
                }
                for ((a, b), w) in edges {
                    circuit
                        .add_connection(ComponentId::new(a), ComponentId::new(b), w)
                        .unwrap();
                }
                let mut tc = TimingConstraints::new(n);
                for ((a, b), dc) in cons {
                    tc.add(ComponentId::new(a), ComponentId::new(b), dc).unwrap();
                }
                let topo = PartitionTopology::grid(1, m, 1000).unwrap();
                let problem = ProblemBuilder::new(circuit, topo).timing(tc).build().unwrap();
                (problem, parts)
            })
        })
    }

    /// A problem large enough (`n ≥ 4`) that single-component moves stay
    /// under the `N/2` fallback threshold and exercise the incremental
    /// patch, plus a random move sequence to replay.
    fn arb_move_sequence() -> impl Strategy<Value = (Problem, Vec<u32>, Vec<(usize, usize)>)> {
        (4usize..12).prop_flat_map(|n| {
            let m = 4usize;
            let edges = proptest::collection::vec(
                ((0..n, 0..n).prop_filter("no self", |(a, b)| a != b), 1i64..5),
                0..20,
            );
            let cons = proptest::collection::vec(
                ((0..n, 0..n).prop_filter("no self", |(a, b)| a != b), 0i64..3),
                0..12,
            );
            let parts = proptest::collection::vec(0u32..m as u32, n);
            let moves = proptest::collection::vec((0..n, 0..m), 0..16);
            (Just(n), edges, cons, parts, moves).prop_map(|(n, edges, cons, parts, moves)| {
                let mut circuit = Circuit::new();
                for j in 0..n {
                    circuit.add_component(format!("c{j}"), 1);
                }
                for ((a, b), w) in edges {
                    circuit
                        .add_connection(ComponentId::new(a), ComponentId::new(b), w)
                        .unwrap();
                }
                let mut tc = TimingConstraints::new(n);
                for ((a, b), dc) in cons {
                    tc.add(ComponentId::new(a), ComponentId::new(b), dc).unwrap();
                }
                let topo = PartitionTopology::grid(2, 2, 1000).unwrap();
                let problem = ProblemBuilder::new(circuit, topo).timing(tc).build().unwrap();
                (problem, parts, moves)
            })
        })
    }

    /// An instance plus a netlist-edit script: each edit is
    /// `(op, a, b, v)` with op 0 = set pair weight (`v % 5`, 0 deletes),
    /// 1 = set/remove timing bound, 2 = detach component `a`, 3 = tighten
    /// every bound (touches all rows — the patch-vs-rebuild threshold
    /// crossing case). Deletions followed by re-adds of the same pair arise
    /// naturally from repeated op-0/op-1 entries on the same `(a, b)`.
    /// `(op, a, b, v)` rows from the doc comment above.
    type EditScript = Vec<(usize, usize, usize, i64)>;

    fn arb_edit_script() -> impl Strategy<Value = (Problem, Vec<u32>, EditScript)> {
        (3usize..8).prop_flat_map(|n| {
            let m = 4usize;
            let edges = proptest::collection::vec(
                ((0..n, 0..n).prop_filter("no self", |(a, b)| a != b), 1i64..5),
                0..15,
            );
            let cons = proptest::collection::vec(
                ((0..n, 0..n).prop_filter("no self", |(a, b)| a != b), 0i64..3),
                0..10,
            );
            let parts = proptest::collection::vec(0u32..m as u32, n);
            let edits = proptest::collection::vec((0usize..4, 0..n, 0..n, 0i64..6), 1..14);
            (Just(n), edges, cons, parts, edits).prop_map(|(n, edges, cons, parts, edits)| {
                let mut circuit = Circuit::new();
                for j in 0..n {
                    circuit.add_component(format!("c{j}"), 1);
                }
                for ((a, b), w) in edges {
                    circuit
                        .add_connection(ComponentId::new(a), ComponentId::new(b), w)
                        .unwrap();
                }
                let mut tc = TimingConstraints::new(n);
                for ((a, b), dc) in cons {
                    tc.add(ComponentId::new(a), ComponentId::new(b), dc).unwrap();
                }
                let topo = PartitionTopology::grid(2, 2, 1000).unwrap();
                let problem = ProblemBuilder::new(circuit, topo).timing(tc).build().unwrap();
                (problem, parts, edits)
            })
        })
    }

    proptest! {
        // The ECO bit-identity invariant: after every netlist edit, the
        // row-patched `QBody` and the structure-patched embedded
        // `PartitionProfile` must equal their from-scratch counterparts
        // built on the edited problem, bit for bit.
        #[test]
        fn patched_body_and_profile_match_fresh(
            (mut problem, parts, edits) in arb_edit_script()
        ) {
            let asg = Assignment::from_parts(parts).unwrap();
            let mut body = QBody::build(&problem, PAPER_PENALTY).unwrap();
            let mut profile = {
                let q = QMatrix::from_body(&problem, body.clone());
                crate::PartitionProfile::embedded(&q, &asg)
            };
            for (op, a, b, v) in edits {
                if a == b {
                    continue;
                }
                let (ca, cb) = (ComponentId::new(a), ComponentId::new(b));
                let touched: Vec<usize> = match op {
                    0 => {
                        problem.set_pair_weight(ca, cb, v % 5).unwrap();
                        vec![a, b]
                    }
                    1 => {
                        let bound = if v % 4 == 3 { None } else { Some(v % 4) };
                        problem.set_timing_bound(ca, cb, bound).unwrap();
                        vec![a, b]
                    }
                    2 => {
                        // Capture partners before the detach empties them.
                        let t: Vec<usize> = std::iter::once(a)
                            .chain(problem.circuit().out_connections(ca).map(|(k, _)| k.index()))
                            .chain(problem.circuit().in_connections(ca).map(|(k, _)| k.index()))
                            .chain(problem.timing().constraints_from(ca).map(|(k, _)| k.index()))
                            .chain(problem.timing().constraints_into(ca).map(|(k, _)| k.index()))
                            .collect();
                        problem.detach_component(ca).unwrap();
                        t
                    }
                    _ => {
                        problem.tighten_cycle_time(v % 2).unwrap();
                        (0..problem.n()).collect()
                    }
                };
                body.patch_rows(&problem, &touched);
                let fresh = QBody::build(&problem, PAPER_PENALTY).unwrap();
                prop_assert_eq!(&body, &fresh, "body diverged after op {}", op);
                let q = QMatrix::from_body(&problem, body.clone());
                profile.patch_structure(&q, &asg, &touched);
                let fresh_profile = crate::PartitionProfile::embedded(&q, &asg);
                prop_assert_eq!(&profile, &fresh_profile, "profile diverged after op {}", op);
            }
        }

        #[test]
        fn eta_update_matches_fresh_eta((problem, parts, moves) in arb_move_sequence()) {
            let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
            let start = Assignment::from_parts(parts).unwrap();
            let mut cur = start.clone();
            let mut eta = Vec::new();
            q.eta(&cur, &mut eta);
            let mut fresh = Vec::new();
            // Single-component steps: the incremental patch must track a
            // fresh recomputation bit for bit across the whole sequence
            // (no drift).
            for (j, i) in moves {
                let mut next = cur.clone();
                next.move_to(ComponentId::new(j), PartitionId::new(i));
                q.eta_update(&cur, &next, &mut eta);
                q.eta(&next, &mut fresh);
                prop_assert_eq!(&eta, &fresh, "after moving c{} -> p{}", j, i);
                cur = next;
            }
            // Bulk jump back to the start: exercises the >N/2 fallback on
            // scrambled assignments and the no-op path on identical ones.
            q.eta_update(&cur, &start, &mut eta);
            q.eta(&start, &mut fresh);
            prop_assert_eq!(&eta, &fresh);
            // Cold buffer: wrong length must trigger a full recompute.
            let mut cold = Vec::new();
            prop_assert!(!q.eta_update(&cur, &start, &mut cold));
            prop_assert_eq!(&cold, &fresh);
        }

        #[test]
        fn sparse_kernels_match_dense((problem, parts) in arb_timed_problem()) {
            let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
            let asg = Assignment::from_parts(parts).unwrap();
            // η.
            let mut eta = Vec::new();
            q.eta(&asg, &mut eta);
            prop_assert_eq!(&eta, &q.eta_dense_reference(&asg));
            // yᵀQ̂y.
            let dense = q.dense();
            let y = asg.indicator_vector(problem.m());
            let mut expect = 0;
            for (r1, &y1) in y.iter().enumerate() {
                if !y1 { continue; }
                for (r2, &y2) in y.iter().enumerate() {
                    if y2 { expect += dense[(r1, r2)]; }
                }
            }
            prop_assert_eq!(q.value(&asg), expect);
        }

        #[test]
        fn value_feasible_iff_equals_cost((problem, parts) in arb_timed_problem()) {
            let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
            let asg = Assignment::from_parts(parts).unwrap();
            let cost = crate::Evaluator::new(&problem).cost(&asg);
            if q.violation_count(&asg) == 0 {
                prop_assert_eq!(q.value(&asg), cost);
            } else {
                prop_assert!(q.value(&asg) != cost || q.penalty() == 0);
            }
        }

        #[test]
        fn embedded_swap_delta_matches_value((problem, parts) in arb_timed_problem()) {
            let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
            let asg = Assignment::from_parts(parts).unwrap();
            for j1 in 0..problem.n() {
                for j2 in 0..problem.n() {
                    let mut swapped = asg.clone();
                    swapped.swap(ComponentId::new(j1), ComponentId::new(j2));
                    prop_assert_eq!(
                        q.swap_delta(&asg, ComponentId::new(j1), ComponentId::new(j2)),
                        q.value(&swapped) - q.value(&asg),
                        "swap c{} <-> c{}", j1, j2
                    );
                }
            }
        }

        #[test]
        fn embedded_move_delta_matches_value((problem, parts) in arb_timed_problem()) {
            let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
            let asg = Assignment::from_parts(parts).unwrap();
            for j in 0..problem.n() {
                for i in 0..problem.m() {
                    let mut moved = asg.clone();
                    moved.move_to(ComponentId::new(j), PartitionId::new(i));
                    prop_assert_eq!(
                        q.move_delta(&asg, ComponentId::new(j), PartitionId::new(i)),
                        q.value(&moved) - q.value(&asg)
                    );
                }
            }
        }

        #[test]
        fn omega_dominates_for_sampled_assignments((problem, parts) in arb_timed_problem()) {
            let q = QMatrix::new(&problem, PAPER_PENALTY).unwrap();
            let omega = q.omega();
            let dense = q.dense();
            let asg = Assignment::from_parts(parts).unwrap();
            let y = asg.indicator_vector(problem.m());
            for r in 0..omega.len() {
                let row_sum: Cost = y.iter().enumerate()
                    .filter(|&(_, &s)| s)
                    .map(|(s, _)| dense[(r, s)])
                    .sum();
                prop_assert!(omega[r] >= row_sum);
            }
        }

        // The compact streaming build (checked u32 offsets, no nested
        // intermediate) must be bit-identical to the historical two-phase
        // nested construction: same tables, same costs, same η rows.
        #[test]
        fn streamed_build_matches_nested_reference((problem, parts) in arb_timed_problem()) {
            let streamed = QBody::build(&problem, PAPER_PENALTY).unwrap();
            let nested = QBody::build_nested_reference(&problem, PAPER_PENALTY).unwrap();
            prop_assert_eq!(&streamed, &nested);
            let qs = QMatrix::from_body(&problem, streamed);
            let qn = QMatrix::from_body(&problem, nested);
            let asg = Assignment::from_parts(parts).unwrap();
            prop_assert_eq!(qs.value(&asg), qn.value(&asg));
            let (mut eta_s, mut eta_n) = (Vec::new(), Vec::new());
            qs.eta(&asg, &mut eta_s);
            qn.eta(&asg, &mut eta_n);
            prop_assert_eq!(eta_s, eta_n);
        }
    }
}
