//! Deterministic intra-solve data parallelism: scoped-thread chunked maps
//! with in-order reduction.
//!
//! The solvers' hot loops — η-row batches, gain-table rebuilds, matching
//! candidate scans — are maps of a pure function over a row index. This
//! module fans such maps across a [`std::thread::scope`] worker pool under a
//! hard determinism contract: **the result is bit-identical for every thread
//! count**, because
//!
//! * each row is computed by the same pure function regardless of which
//!   worker runs it (all gain/η arithmetic is exact `i64`),
//! * rows are partitioned into contiguous chunks whose boundaries depend
//!   only on `(rows, workers)`, never on scheduling, and
//! * results land in their row's slot ([`for_each_row`]) or are concatenated
//!   in chunk order ([`map_collect`]) — no racing reduction.
//!
//! One worker (`threads == 1`, or too few rows to be worth fanning out) runs
//! the plain serial loop, so the serial path *is* the parallel path with a
//! single chunk.

/// Minimum rows per worker before fanning out is worthwhile: below this the
/// spawn/join overhead dwarfs the row work and the serial loop wins.
const MIN_ROWS_PER_WORKER: usize = 2;

/// Resolves a requested thread count against the machine: `0` means one
/// worker per available core; an explicit `t` is honored as-is (even beyond
/// the core count — useful for exercising the parallel paths on small
/// machines and in CI).
pub fn effective_threads(requested: usize) -> usize {
    match requested {
        0 => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        t => t,
    }
}

/// Number of worker chunks a map over `rows` rows actually uses under a
/// `threads` budget: capped so every worker gets at least
/// [`MIN_ROWS_PER_WORKER`] rows, and never below 1. `1` means the serial
/// loop runs.
pub fn workers_for(threads: usize, rows: usize) -> usize {
    threads.min(rows / MIN_ROWS_PER_WORKER).max(1)
}

/// Applies `f(row, &mut data[row*stride..][..stride])` to every row of a
/// flat row-major buffer, fanning contiguous row chunks across up to
/// `threads` scoped workers. Returns the number of chunks used (`1` = the
/// serial loop ran).
///
/// `f` must be a pure function of the row index and the slot contents it is
/// given; under that contract the output is bit-identical for every thread
/// count (rows write disjoint slots, chunk boundaries depend only on the
/// row count).
///
/// # Panics
///
/// Panics if `stride` is zero or does not divide `data.len()`, or if a
/// worker panics. A worker panic is isolated per chunk (every other worker
/// runs to completion, keeping its rows intact) and re-raised with the
/// lowest-chunk payload, so the surfaced panic is deterministic for any
/// thread count; callers that need a typed error wrap the whole map in
/// [`crate::exec::catch_panic`].
pub fn for_each_row<T, F>(threads: usize, stride: usize, data: &mut [T], f: F) -> usize
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(stride > 0, "stride must be positive");
    assert_eq!(data.len() % stride, 0, "stride must divide the buffer");
    let rows = data.len() / stride;
    let workers = workers_for(threads, rows);
    if workers <= 1 {
        for (r, slot) in data.chunks_mut(stride).enumerate() {
            f(r, slot);
        }
        return 1;
    }
    // Balanced contiguous chunks: the first `rem` workers take one extra row.
    let base = rows / workers;
    let rem = rows % workers;
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut row0 = 0;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let take = base + usize::from(w < rem);
                let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(take * stride);
                rest = tail;
                let start = row0;
                row0 += take;
                scope.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        for (i, slot) in chunk.chunks_mut(stride).enumerate() {
                            f(start + i, slot);
                        }
                    }))
                })
            })
            .collect();
        // Join everyone before re-raising, lowest chunk first: isolation
        // (no worker is torn down mid-row) plus a deterministic payload.
        let mut first_panic = None;
        for handle in handles {
            if let Err(payload) = handle.join().expect("worker catches its own panics") {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    workers
}

/// Maps `f` over `0..rows` and returns the results in index order, fanning
/// contiguous index ranges across up to `threads` scoped workers. Per-chunk
/// result vectors are concatenated in chunk order, so the output is exactly
/// `(0..rows).map(f).collect()` for every thread count (under the same
/// purity contract as [`for_each_row`]).
///
/// # Panics
///
/// Panics if a worker panics: each chunk is isolated (the others run to
/// completion) and the lowest-chunk payload is re-raised, so the surfaced
/// panic is deterministic for any thread count; callers that need a typed
/// error wrap the whole map in [`crate::exec::catch_panic`].
pub fn map_collect<R, F>(threads: usize, rows: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers_for(threads, rows);
    if workers <= 1 {
        return (0..rows).map(f).collect();
    }
    let base = rows / workers;
    let rem = rows % workers;
    std::thread::scope(|scope| {
        let f = &f;
        let mut start = 0;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let take = base + usize::from(w < rem);
                let range = start..start + take;
                start += take;
                scope.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        range.map(f).collect::<Vec<R>>()
                    }))
                })
            })
            .collect();
        let mut out = Vec::with_capacity(rows);
        let mut first_panic = None;
        for handle in handles {
            match handle.join().expect("worker catches its own panics") {
                Ok(chunk) => out.extend(chunk),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        out
    })
}

/// Maps `f` over the balanced contiguous chunks of `0..rows` (one task per
/// worker) and returns the per-chunk results in chunk order. Unlike
/// [`map_collect`], `f` sees a whole `Range` at once, so a task can build
/// one aggregate (a partial histogram, a partial profile) per chunk instead
/// of one value per row. Chunk boundaries depend only on `(rows, workers)`,
/// so a serial in-chunk-order merge of the results is deterministic for
/// every thread count.
///
/// # Panics
///
/// Panics if a worker panics, with the same per-chunk isolation and
/// lowest-chunk re-raise discipline as [`map_collect`].
pub fn map_chunks<R, F>(threads: usize, rows: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
{
    let workers = workers_for(threads, rows);
    if workers <= 1 {
        return vec![f(0, 0..rows)];
    }
    let base = rows / workers;
    let rem = rows % workers;
    std::thread::scope(|scope| {
        let f = &f;
        let mut start = 0;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let take = base + usize::from(w < rem);
                let range = start..start + take;
                start += take;
                scope.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(w, range)))
                })
            })
            .collect();
        let mut out = Vec::with_capacity(workers);
        let mut first_panic = None;
        for handle in handles {
            match handle.join().expect("worker catches its own panics") {
                Ok(chunk) => out.push(chunk),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_honors_explicit_requests() {
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn workers_never_exceed_rows_over_min_chunk() {
        assert_eq!(workers_for(8, 3), 1);
        assert_eq!(workers_for(8, 4), 2);
        assert_eq!(workers_for(2, 100), 2);
        assert_eq!(workers_for(1, 100), 1);
        assert_eq!(workers_for(0, 100), 1);
    }

    #[test]
    fn for_each_row_matches_serial_for_any_thread_count() {
        for rows in [0usize, 1, 3, 7, 16, 33] {
            for stride in [1usize, 4, 5] {
                let mut serial = vec![0i64; rows * stride];
                for (r, slot) in serial.chunks_mut(stride).enumerate() {
                    for (i, v) in slot.iter_mut().enumerate() {
                        *v = (r * 31 + i) as i64;
                    }
                }
                for threads in [1usize, 2, 4, 8] {
                    let mut out = vec![0i64; rows * stride];
                    let chunks = for_each_row(threads, stride, &mut out, |r, slot| {
                        for (i, v) in slot.iter_mut().enumerate() {
                            *v = (r * 31 + i) as i64;
                        }
                    });
                    assert!(chunks >= 1 && chunks <= threads.max(1));
                    assert_eq!(out, serial, "rows={rows} stride={stride} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn map_collect_preserves_index_order() {
        let expect: Vec<usize> = (0..57).map(|i| i * i).collect();
        for threads in [1usize, 2, 3, 4, 8, 16] {
            assert_eq!(map_collect(threads, 57, |i| i * i), expect, "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_covers_rows_in_order_for_any_thread_count() {
        for rows in [0usize, 1, 5, 16, 33] {
            for threads in [1usize, 2, 4, 8] {
                let chunks = map_chunks(threads, rows, |w, range| (w, range));
                assert!(!chunks.is_empty());
                let mut next = 0;
                for (i, (w, range)) in chunks.iter().enumerate() {
                    assert_eq!(*w, i);
                    assert_eq!(range.start, next);
                    next = range.end;
                }
                assert_eq!(next, rows, "rows={rows} threads={threads}");
            }
        }
    }

    #[test]
    fn map_collect_handles_empty_and_tiny_inputs() {
        assert_eq!(map_collect::<usize, _>(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_collect(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn map_collect_panics_deterministically_across_thread_counts() {
        for threads in [2usize, 4, 8] {
            let err = crate::exec::catch_panic(|| {
                map_collect(threads, 16, |i| {
                    if i == 5 || i == 11 {
                        panic!("poisoned row {i}");
                    }
                    i
                })
            })
            .expect_err("the poisoned rows must surface");
            match err {
                crate::Error::Internal { message } => assert!(
                    message.contains("poisoned row 5"),
                    "threads={threads}: lowest chunk must win, got {message:?}"
                ),
                other => panic!("expected Internal, got {other:?}"),
            }
        }
    }

    #[test]
    fn for_each_row_panics_deterministically_and_keeps_other_chunks() {
        for threads in [2usize, 4, 8] {
            let mut data = vec![0i64; 16];
            let err = crate::exec::catch_panic(|| {
                for_each_row(threads, 1, &mut data, |r, slot| {
                    if r == 3 {
                        panic!("poisoned row {r}");
                    }
                    slot[0] = r as i64;
                })
            })
            .expect_err("the poisoned row must surface");
            match err {
                crate::Error::Internal { message } => assert!(
                    message.contains("poisoned row 3"),
                    "threads={threads}: got {message:?}"
                ),
                other => panic!("expected Internal, got {other:?}"),
            }
            // Every row outside the poisoned chunk still got written: the
            // other workers were not torn down by the panic.
            let written = data.iter().filter(|&&v| v != 0).count();
            assert!(written >= 16 - 16_usize.div_ceil(threads) - 1, "threads={threads}");
        }
    }
}
