//! Feasibility checking for C1 (capacity) and C2 (timing), both as a full
//! audit and as the incremental predicates the interchange baselines use on
//! every candidate move.

use crate::{Assignment, ComponentId, Delay, PartitionId, Problem, Size};
use serde::{Deserialize, Serialize};

/// One capacity-constraint (C1) violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityViolation {
    /// The overfull partition.
    pub partition: PartitionId,
    /// Total size of components assigned to it.
    pub used: Size,
    /// Its capacity `c_i`.
    pub capacity: Size,
}

/// One timing-constraint (C2) violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingViolation {
    /// Source component `j1`.
    pub from: ComponentId,
    /// Sink component `j2`.
    pub to: ComponentId,
    /// Actual inter-partition delay `D(A(j1), A(j2))`.
    pub delay: Delay,
    /// Allowed maximum `D_C(j1, j2)`.
    pub limit: Delay,
}

/// Full feasibility audit of an assignment.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeasibilityReport {
    /// All C1 violations.
    pub capacity: Vec<CapacityViolation>,
    /// All C2 violations.
    pub timing: Vec<TimingViolation>,
}

impl FeasibilityReport {
    /// `true` when the assignment satisfies both C1 and C2.
    pub fn is_feasible(&self) -> bool {
        self.capacity.is_empty() && self.timing.is_empty()
    }

    /// Total number of violations.
    pub fn violation_count(&self) -> usize {
        self.capacity.len() + self.timing.len()
    }
}

/// Audits an assignment against C1 and C2.
///
/// # Panics
///
/// Panics if the assignment does not match the problem's dimensions; call
/// [`Problem::validate_assignment`] first for untrusted input.
pub fn check_feasibility(problem: &Problem, assignment: &Assignment) -> FeasibilityReport {
    let mut report = FeasibilityReport::default();
    let m = problem.m();
    let mut used = vec![0u64; m];
    for j in 0..problem.n() {
        used[assignment.part_index(j)] += problem.circuit().size(ComponentId::new(j));
    }
    for (i, &u) in used.iter().enumerate() {
        let cap = problem.topology().capacity(PartitionId::new(i));
        if u > cap {
            report.capacity.push(CapacityViolation {
                partition: PartitionId::new(i),
                used: u,
                capacity: cap,
            });
        }
    }
    let d = problem.topology().delay();
    for (j1, j2, limit) in problem.timing().iter() {
        let delay = d[(
            assignment.part_index(j1.index()),
            assignment.part_index(j2.index()),
        )];
        if delay > limit {
            report.timing.push(TimingViolation {
                from: j1,
                to: j2,
                delay,
                limit,
            });
        }
    }
    report
}

/// `true` when moving component `j` to partition `to` keeps every timing
/// constraint incident to `j` satisfied (constraints between *other*
/// components are unaffected by the move).
///
/// Runs in `O(constraints incident to j)`.
///
/// # Panics
///
/// Panics if `j` or `to` is out of range.
pub fn move_is_timing_feasible(
    problem: &Problem,
    assignment: &Assignment,
    j: ComponentId,
    to: PartitionId,
) -> bool {
    let d = problem.topology().delay();
    let to_i = to.index();
    for (k, limit) in problem.timing().constraints_from(j) {
        let ik = if k == j { to_i } else { assignment.part_index(k.index()) };
        if d[(to_i, ik)] > limit {
            return false;
        }
    }
    for (k, limit) in problem.timing().constraints_into(j) {
        let ik = if k == j { to_i } else { assignment.part_index(k.index()) };
        if d[(ik, to_i)] > limit {
            return false;
        }
    }
    true
}

/// `true` when swapping the partitions of `j1` and `j2` keeps every timing
/// constraint incident to either component satisfied. Constraints between
/// `j1` and `j2` themselves are checked against their *post-swap* partitions.
///
/// Runs in `O(constraints incident to j1 and j2)`.
///
/// # Panics
///
/// Panics if either id is out of range.
pub fn swap_is_timing_feasible(
    problem: &Problem,
    assignment: &Assignment,
    j1: ComponentId,
    j2: ComponentId,
) -> bool {
    if j1 == j2 {
        return true;
    }
    let d = problem.topology().delay();
    let i1 = assignment.part_index(j1.index());
    let i2 = assignment.part_index(j2.index());
    // Partition of component k after the swap.
    let post = |k: ComponentId| -> usize {
        if k == j1 {
            i2
        } else if k == j2 {
            i1
        } else {
            assignment.part_index(k.index())
        }
    };
    for j in [j1, j2] {
        let ij = post(j);
        for (k, limit) in problem.timing().constraints_from(j) {
            if d[(ij, post(k))] > limit {
                return false;
            }
        }
        for (k, limit) in problem.timing().constraints_into(j) {
            if d[(post(k), ij)] > limit {
                return false;
            }
        }
    }
    true
}

/// Incrementally maintained per-partition size usage, for `O(1)` capacity
/// checks during local search.
///
/// ```
/// use qbp_core::{Circuit, PartitionTopology, ProblemBuilder, Assignment, UsageTracker,
///                ComponentId, PartitionId};
///
/// # fn main() -> Result<(), qbp_core::Error> {
/// let mut circuit = Circuit::new();
/// let a = circuit.add_component("a", 6);
/// let b = circuit.add_component("b", 3);
/// let c = circuit.add_component("c", 1);
/// let problem = ProblemBuilder::new(circuit, PartitionTopology::grid(1, 2, 8)?).build()?;
/// let asg = Assignment::from_parts(vec![0, 1, 1])?;
/// let usage = UsageTracker::new(&problem, &asg);
/// assert!(!usage.move_fits(&problem, a, PartitionId::new(1))); // 4 + 6 > 8
/// assert!(usage.move_fits(&problem, c, PartitionId::new(0)));  // 6 + 1 ≤ 8
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageTracker {
    used: Vec<Size>,
}

impl UsageTracker {
    /// Computes the usage of every partition under `assignment`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment does not match the problem's dimensions.
    pub fn new(problem: &Problem, assignment: &Assignment) -> Self {
        let mut used = vec![0; problem.m()];
        for j in 0..problem.n() {
            used[assignment.part_index(j)] += problem.circuit().size(ComponentId::new(j));
        }
        UsageTracker { used }
    }

    /// Current usage of partition `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn used(&self, i: PartitionId) -> Size {
        self.used[i.index()]
    }

    /// `true` when component `j` (currently in `from` per the tracker's
    /// state) would fit in partition `to` without violating C1.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn move_fits(&self, problem: &Problem, j: ComponentId, to: PartitionId) -> bool {
        let size = problem.circuit().size(j);
        self.used[to.index()] + size <= problem.topology().capacity(to)
    }

    /// `true` when swapping `j1` and `j2` (in partitions `i1`, `i2`) keeps
    /// both partitions within capacity.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn swap_fits(
        &self,
        problem: &Problem,
        j1: ComponentId,
        i1: PartitionId,
        j2: ComponentId,
        i2: PartitionId,
    ) -> bool {
        if i1 == i2 {
            return true;
        }
        let s1 = problem.circuit().size(j1);
        let s2 = problem.circuit().size(j2);
        self.used[i1.index()] - s1 + s2 <= problem.topology().capacity(i1)
            && self.used[i2.index()] - s2 + s1 <= problem.topology().capacity(i2)
    }

    /// Applies a move of component `j` (size taken from `problem`) from
    /// `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range, or if the tracker's usage of `from`
    /// is smaller than the component's size (inconsistent bookkeeping).
    pub fn apply_move(
        &mut self,
        problem: &Problem,
        j: ComponentId,
        from: PartitionId,
        to: PartitionId,
    ) {
        if from == to {
            return;
        }
        let size = problem.circuit().size(j);
        self.used[from.index()] = self.used[from.index()]
            .checked_sub(size)
            .expect("usage tracker out of sync: removing more than present");
        self.used[to.index()] += size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, PartitionTopology, ProblemBuilder, TimingConstraints};

    /// Paper-style setup: 3 components on a 2×2 grid with D_C(a,b)=D_C(b,c)=1
    /// (symmetric).
    fn timed_problem(cap: Size) -> Problem {
        let mut c = Circuit::new();
        let a = c.add_component("a", 3);
        let b = c.add_component("b", 4);
        let d = c.add_component("c", 5);
        c.add_wires(a, b, 5).unwrap();
        c.add_wires(b, d, 2).unwrap();
        let mut tc = TimingConstraints::new(3);
        tc.add_symmetric(a, b, 1).unwrap();
        tc.add_symmetric(b, d, 1).unwrap();
        ProblemBuilder::new(c, PartitionTopology::grid(2, 2, cap).unwrap())
            .timing(tc)
            .build()
            .unwrap()
    }

    #[test]
    fn feasible_assignment_reports_clean() {
        let p = timed_problem(20);
        // a→0, b→1, c→3: all constrained pairs at distance 1.
        let asg = Assignment::from_parts(vec![0, 1, 3]).unwrap();
        let report = check_feasibility(&p, &asg);
        assert!(report.is_feasible());
        assert_eq!(report.violation_count(), 0);
    }

    #[test]
    fn timing_violation_detected() {
        let p = timed_problem(20);
        // a→0, b→3: distance 2 > limit 1 (both directions violated).
        let asg = Assignment::from_parts(vec![0, 3, 3]).unwrap();
        let report = check_feasibility(&p, &asg);
        assert_eq!(report.timing.len(), 2);
        assert!(!report.is_feasible());
        let v = &report.timing[0];
        assert_eq!(v.delay, 2);
        assert_eq!(v.limit, 1);
    }

    #[test]
    fn capacity_violation_detected() {
        let p = timed_problem(6);
        // Partition 0 holds sizes 3+4=7 > 6.
        let asg = Assignment::from_parts(vec![0, 0, 1]).unwrap();
        let report = check_feasibility(&p, &asg);
        assert_eq!(report.capacity.len(), 1);
        assert_eq!(report.capacity[0].used, 7);
        assert_eq!(report.capacity[0].capacity, 6);
    }

    #[test]
    fn move_timing_feasibility_is_incremental_truth() {
        let p = timed_problem(20);
        let asg = Assignment::from_parts(vec![0, 1, 3]).unwrap();
        // Moving a to partition 2 keeps distance(2, 1) = 2 > 1: infeasible.
        assert!(!move_is_timing_feasible(
            &p,
            &asg,
            ComponentId::new(0),
            PartitionId::new(2)
        ));
        // Moving a to partition 3 keeps distance(3, 1) = 1: feasible.
        assert!(move_is_timing_feasible(
            &p,
            &asg,
            ComponentId::new(0),
            PartitionId::new(3)
        ));
    }

    #[test]
    fn move_feasibility_matches_full_check() {
        let p = timed_problem(20);
        let asg = Assignment::from_parts(vec![0, 1, 3]).unwrap();
        for j in 0..3 {
            for to in 0..4 {
                let mut moved = asg.clone();
                moved.move_to(ComponentId::new(j), PartitionId::new(to));
                let full = check_feasibility(&p, &moved).timing.is_empty();
                let incr =
                    move_is_timing_feasible(&p, &asg, ComponentId::new(j), PartitionId::new(to));
                assert_eq!(full, incr, "move c{j} -> p{to}");
            }
        }
    }

    #[test]
    fn swap_feasibility_matches_full_check() {
        // The incremental predicate only examines constraints incident to
        // the swapped pair, so from a *feasible* start it agrees with the
        // full audit; from an infeasible start it agrees with the audit
        // restricted to incident constraints.
        let p = timed_problem(20);
        for parts in [[0u32, 1, 3], [0, 0, 1], [2, 1, 0], [3, 2, 1]] {
            let asg = Assignment::from_parts(parts.to_vec()).unwrap();
            let start_feasible = check_feasibility(&p, &asg).timing.is_empty();
            for j1 in 0..3 {
                for j2 in 0..3 {
                    let c1 = ComponentId::new(j1);
                    let c2 = ComponentId::new(j2);
                    let mut swapped = asg.clone();
                    swapped.swap(c1, c2);
                    let post = check_feasibility(&p, &swapped);
                    let incr = swap_is_timing_feasible(&p, &asg, c1, c2);
                    if start_feasible {
                        assert_eq!(
                            post.timing.is_empty(),
                            incr,
                            "swap c{j1} <-> c{j2} from {parts:?}"
                        );
                    } else if j1 == j2 {
                        // Identity swaps are no-ops and always accepted.
                        assert!(incr);
                    } else {
                        let incident_clean = post
                            .timing
                            .iter()
                            .all(|v| v.from != c1 && v.from != c2 && v.to != c1 && v.to != c2);
                        assert_eq!(incident_clean, incr, "swap c{j1} <-> c{j2} from {parts:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn usage_tracker_moves() {
        let p = timed_problem(20);
        let asg = Assignment::from_parts(vec![0, 1, 3]).unwrap();
        let mut usage = UsageTracker::new(&p, &asg);
        assert_eq!(usage.used(PartitionId::new(0)), 3);
        assert_eq!(usage.used(PartitionId::new(1)), 4);
        usage.apply_move(&p, ComponentId::new(0), PartitionId::new(0), PartitionId::new(1));
        assert_eq!(usage.used(PartitionId::new(0)), 0);
        assert_eq!(usage.used(PartitionId::new(1)), 7);
    }

    #[test]
    fn usage_tracker_swap_fits() {
        let p = timed_problem(8);
        // sizes: a=3, b=4, c=5. Partition 0: {a, b} = 7; partition 1: {c} = 5.
        let asg = Assignment::from_parts(vec![0, 0, 1]).unwrap();
        let usage = UsageTracker::new(&p, &asg);
        // Swap b (4) with c (5): p0 becomes 3+5=8 ≤ 8, p1 becomes 4 ≤ 8: fits.
        assert!(usage.swap_fits(
            &p,
            ComponentId::new(1),
            PartitionId::new(0),
            ComponentId::new(2),
            PartitionId::new(1)
        ));
        // Swap a (3) with c (5): p0 becomes 4+5=9 > 8: does not fit.
        assert!(!usage.swap_fits(
            &p,
            ComponentId::new(0),
            PartitionId::new(0),
            ComponentId::new(2),
            PartitionId::new(1)
        ));
    }

    #[test]
    #[should_panic(expected = "out of sync")]
    fn usage_tracker_detects_inconsistency() {
        let p = timed_problem(20);
        let asg = Assignment::from_parts(vec![0, 1, 3]).unwrap();
        let mut usage = UsageTracker::new(&p, &asg);
        // Claim c (size 5) leaves partition 0, which only holds 3.
        usage.apply_move(&p, ComponentId::new(2), PartitionId::new(0), PartitionId::new(1));
    }
}
