//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of the `rand` API it actually uses: a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the
//! [`SeedableRng::seed_from_u64`] constructor, the [`RngExt`] extension
//! methods (`random`, `random_range`, `random_bool`), and
//! [`seq::SliceRandom::shuffle`].
//!
//! Determinism is the contract: every generator here is a pure function of
//! its seed, with no global or thread-local state, so solver runs and tests
//! reproduce bit-identically across machines and thread schedules.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used for seed expansion (public-domain algorithm by
/// Sebastiano Vigna).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
    /// a 256-bit-state generator with good statistical quality and a cheap
    /// `next_u64`. Unlike upstream `rand`'s ChaCha-based `StdRng` it is not
    /// cryptographically secure — solvers and tests here only need
    /// determinism and uniformity.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }

    /// Alias kept for API compatibility with `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Draws uniformly from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                debug_assert!(span > 0, "empty range");
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64·span
                // per draw, far below anything observable, and the mapping is
                // a pure function of the stream.
                let hi128 = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(hi128 as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Only reachable for 64-bit types covering the full domain.
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                debug_assert!(span > 0, "empty range");
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(off as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = ((hi as i64).wrapping_sub(lo as i64) as u64).wrapping_add(1);
                if span == 0 {
                    // Only reachable for 64-bit types covering the full domain.
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws a value uniformly from `self`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Types producible by [`RngExt::random`].
pub trait StandardRandom {
    /// Draws a value from the standard distribution for the type.
    fn standard_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardRandom for f64 {
    fn standard_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardRandom for f32 {
    fn standard_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardRandom for bool {
    fn standard_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardRandom for u64 {
    fn standard_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardRandom for u32 {
    fn standard_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Extension methods mirroring `rand`'s `Rng`.
pub trait RngExt: RngCore {
    /// Draws a value from the type's standard distribution (`f64`/`f32` in
    /// `[0, 1)`, uniform integers, fair `bool`).
    fn random<T: StandardRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_random(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when `range` is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Upstream-compatible alias: `rand::Rng` is the same extension trait.
pub use self::RngExt as Rng;

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle, deterministic in the generator stream.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_half_open(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_half_open(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn random_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..2000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 2000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "seed 11 should permute");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([5u8].choose(&mut rng).is_some());
    }
}
