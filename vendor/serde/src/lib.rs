//! Offline facade for `serde`.
//!
//! The workspace's model types carry `#[derive(Serialize, Deserialize)]` so
//! a structured wire format can be layered on later, but no code path
//! serializes through serde today — `.qbp` files use a hand-rolled text
//! format (`qbp_core::io`). This facade provides the trait names and no-op
//! derive macros so those annotations compile without network access.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Namespace mirror of `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}
