//! Offline mini `proptest`.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of the proptest API its tests use: [`strategy::Strategy`] with
//! `prop_map` / `prop_flat_map` / `prop_filter`, [`strategy::Just`], tuple
//! and integer-range strategies, [`collection::vec`], [`bool::ANY`], the
//! [`proptest!`] macro with `#![proptest_config(...)]`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   deterministic per-test seed; re-running reproduces it exactly.
//! * **Deterministic seeding.** Each test function derives its RNG seed from
//!   its fully qualified name, so CI runs are reproducible and
//!   `proptest-regressions` files are not consulted.
//! * **Filters retry inline** (up to a large bounded number of attempts)
//!   instead of feeding a global rejection budget.

#![warn(missing_docs)]

/// RNG + configuration + case loop.
pub mod test_runner {
    /// SplitMix64 step used for seeding.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Deterministic generator driving value generation (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds a generator from a 64-bit seed.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            TestRng { s }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }

        /// Uniform draw in `[0, span)`; `span > 0`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Fair coin.
        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// FNV-1a hash of a test's fully qualified name → per-test seed.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before the test errors.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    /// Why a case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
        /// A `prop_assert*!` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failing variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds the rejecting variant.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives the case loop for one `proptest!` test.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
    }

    impl TestRunner {
        /// Creates a runner with a deterministic per-test seed.
        pub fn new(config: ProptestConfig, seed: u64) -> Self {
            TestRunner { config, seed }
        }

        /// Runs `case` against `config.cases` freshly generated inputs.
        ///
        /// # Panics
        ///
        /// Panics (failing the enclosing `#[test]`) on the first
        /// [`TestCaseError::Fail`], or when `prop_assume!` rejects more than
        /// `config.max_global_rejects` draws.
        pub fn run_cases<F: FnMut(&mut TestRng) -> TestCaseResult>(&mut self, mut case: F) {
            let mut passed = 0u32;
            let mut rejects = 0u32;
            let mut draw = 0u64;
            while passed < self.config.cases {
                // Every draw gets its own stream so a rejected case does not
                // shift later cases' inputs.
                let mut rng = TestRng::seed_from_u64(self.seed ^ draw.wrapping_mul(0x9E37_79B9));
                draw += 1;
                match case(&mut rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejects += 1;
                        assert!(
                            rejects <= self.config.max_global_rejects,
                            "proptest: too many prop_assume! rejections ({rejects})"
                        );
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed (case {passed}, draw {}, seed {:#x}): {msg}",
                            draw - 1,
                            self.seed
                        );
                    }
                }
            }
        }
    }
}

/// Strategies: value generators plus the combinators the workspace uses.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// Bounded retries for `prop_filter` before the test errors out; the
    /// workspace's filters (e.g. "no self loop") reject well under half of
    /// draws, so hitting this bound indicates a broken predicate.
    const MAX_FILTER_RETRIES: usize = 10_000;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Retains only values satisfying `pred`; re-draws otherwise.
        fn prop_filter<R: Into<String>, F: Fn(&Self::Value) -> bool>(
            self,
            whence: R,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_FILTER_RETRIES {
                let v = self.inner.new_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "proptest: filter `{}` rejected {MAX_FILTER_RETRIES} consecutive draws",
                self.whence
            );
        }
    }

    /// Integer types drawable from a half-open range strategy.
    pub trait RangeValue: Copy {
        /// Uniform draw from `[lo, hi)`.
        fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    }

    macro_rules! impl_range_value {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                #[allow(unused_comparisons)]
                fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    let span = (hi as i128 - lo as i128) as u64;
                    assert!(span > 0, "empty range strategy");
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: RangeValue> Strategy for Range<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::draw(rng, self.start, self.end)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Phantom-typed helper for `any::<T>()`-style calls (unused by the
    /// workspace today; kept so prelude imports stay source-compatible).
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);
}

/// `proptest::collection` — sized collections of strategy-generated values.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Number-of-elements specification accepted by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is uniform over `size` (a `usize` for an exact length, or a
    /// `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// `proptest::bool` — boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding a fair boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Uniform `true` / `false`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn name(pattern in strategy_expr, ...) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        #[test]
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::seed_from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let __strategies = ($($strat,)+);
            let mut __runner = $crate::test_runner::TestRunner::new(__config, __seed);
            __runner.run_cases(|__rng| {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::new_value(&__strategies, __rng);
                let mut __case = || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
    )*};
}

/// Fallible assertion: fails the current case (not the process) so the
/// runner can report the case number and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    __a,
                    __b,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", __a, __b),
            ));
        }
    }};
}

/// Rejects the current case's inputs; the runner draws a fresh case without
/// counting it against the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(1);
        let s = (0usize..5, 10i64..20);
        for _ in 0..200 {
            let (a, b) = Strategy::new_value(&s, &mut rng);
            assert!(a < 5);
            assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn filter_map_flat_map_compose() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(2);
        let s = (0usize..10, 0usize..10)
            .prop_filter("no equal", |(a, b)| a != b)
            .prop_map(|(a, b)| a + b)
            .prop_flat_map(|sum| (Just(sum), 0usize..sum.max(1) + 1));
        for _ in 0..100 {
            let (sum, below) = Strategy::new_value(&s, &mut rng);
            assert!(below <= sum.max(1));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(3);
        let exact = crate::collection::vec(0u32..4, 7usize);
        let ranged = crate::collection::vec(0u32..4, 2usize..5);
        for _ in 0..50 {
            assert_eq!(Strategy::new_value(&exact, &mut rng).len(), 7);
            let len = Strategy::new_value(&ranged, &mut rng).len();
            assert!((2..5).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0usize..6, 0usize..6), c in 1u64..3) {
            prop_assert!(a < 6);
            prop_assert!(b < 6);
            prop_assert!(c == 1 || c == 2);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(c, 0);
            prop_assume!(a != b); // exercised; rejection must not fail
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_assertion_reports_case() {
        let mut runner = crate::test_runner::TestRunner::new(
            ProptestConfig::with_cases(4),
            0xDEAD,
        );
        runner.run_cases(|_rng| {
            Err(TestCaseError::fail("forced"))
        });
    }
}
