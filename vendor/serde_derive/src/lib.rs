//! No-op `Serialize`/`Deserialize` derives for the vendored `serde` facade.
//!
//! The workspace annotates its model types with serde derives so a future
//! wire format can be added without touching every struct, but nothing in
//! the tree serializes through serde yet (the `.qbp` text format is
//! hand-rolled). Offline builds therefore only need the *attribute* to
//! expand to nothing; the `#[serde(...)]` helper attribute is accepted and
//! ignored.

use proc_macro::TokenStream;

/// Expands to nothing; accepts and ignores `#[serde(...)]` helpers.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts and ignores `#[serde(...)]` helpers.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
