//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!` — with a simple median-of-samples timer instead of
//! criterion's full statistics pipeline. Good enough to spot order-of-
//! magnitude regressions and to keep `cargo test --benches` compiling
//! offline; not a substitute for real confidence intervals.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box`.
pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder style, used
    /// in `criterion_group!` config expressions).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&id.to_string(), self.sample_size, &mut f);
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut |b| {
            f(b, input)
        });
    }

    /// Ends the group (kept for API compatibility; no buffered state).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id, used when the group name already names the
    /// function.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the benchmark closure; `iter` times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, storing one sample per call batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // Calibration: find an iteration count that makes one sample ≥ ~1 ms so
    // timer resolution is irrelevant, capped to keep total time bounded.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: iters,
        };
        f(&mut b);
        let elapsed = b.samples.first().copied().unwrap_or_default();
        if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: iters,
        };
        f(&mut b);
        if let Some(d) = b.samples.first() {
            samples.push(d.as_nanos() as u64 / iters.max(1));
        }
    }
    samples.sort_unstable();
    let median = samples.get(samples.len() / 2).copied().unwrap_or(0);
    let (lo, hi) = (
        samples.first().copied().unwrap_or(0),
        samples.last().copied().unwrap_or(0),
    );
    println!("{label:<50} median {median:>12} ns/iter   (min {lo}, max {hi}, {iters} iters/sample)");
}

/// Declares a benchmark group: either `criterion_group!(name, fn1, fn2)` or
/// the struct form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            calls += 1;
            b.iter(|| black_box(1 + 1));
        });
        assert!(calls >= 2, "calibration plus samples must invoke closure");
    }

    #[test]
    fn groups_and_ids_format() {
        let id = BenchmarkId::new("sparse", 128);
        assert_eq!(id.to_string(), "sparse/128");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(1);
        group.bench_with_input(BenchmarkId::new("f", 1), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
